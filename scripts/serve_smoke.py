#!/usr/bin/env python3
"""CI smoke test for the amdrel_serve daemon (DESIGN.md §13).

Starts the daemon on an ephemeral port, submits N concurrent bench_gen
jobs over the newline-delimited JSON protocol (one connection per job,
mixed priorities), waits for every result, and checks each bitstream
fingerprint byte-for-byte against a single-shot `amdrel_cli job` run of
the identical JobSpec. Finishes with a protocol sanity poke (malformed
line answers an error, not a hangup) and a drain shutdown, asserting the
daemon exits 0.

Usage: serve_smoke.py <amdrel_serve> <amdrel_cli> [--jobs N]
"""

import argparse
import json
import socket
import subprocess
import sys
import threading


def job_spec(i):
    spec = {
        "source": "bench_gen",
        "label": f"smoke-{i}",
        "priority": ["high", "normal", "low"][i % 3],
        "bench": {
            "gates": 40 + (i % 4) * 15,
            "latches": 2 + i % 3,
            "inputs": 8,
            "outputs": 6,
            "seed": 500 + i,
        },
    }
    if i % 4 == 0:
        spec["return_bitstream"] = True
    return spec


def request(port, payload):
    """One request line on a fresh connection; returns the parsed reply."""
    with socket.create_connection(("127.0.0.1", port), timeout=120) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise RuntimeError("daemon hung up mid-reply")
            buf += chunk
        return json.loads(buf)


def run_job_via_daemon(port, spec, results, i):
    """submit + blocking result wait, one connection per job."""
    with socket.create_connection(("127.0.0.1", port), timeout=300) as sock:
        f = sock.makefile("rwb")

        def rpc(payload):
            f.write((json.dumps(payload) + "\n").encode())
            f.flush()
            return json.loads(f.readline())

        submitted = rpc({"cmd": "submit", "job": spec})
        assert submitted["ok"], submitted
        result = rpc(
            {"cmd": "result", "id": submitted["id"], "wait": True,
             "timeout_s": 300})
        assert result["ok"] and result["state"] == "done", result
        results[i] = result["result"]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("serve_bin")
    parser.add_argument("cli_bin")
    parser.add_argument("--jobs", type=int, default=8)
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.serve_bin, "--port", "0", "--workers", "4"],
        stdout=subprocess.PIPE, text=True)
    try:
        banner = daemon.stdout.readline().strip()
        assert banner.startswith("listening on "), banner
        port = int(banner.split()[-1])
        print(f"daemon up on port {port}", flush=True)

        specs = [job_spec(i) for i in range(args.jobs)]
        results = [None] * args.jobs
        threads = [
            threading.Thread(target=run_job_via_daemon,
                             args=(port, specs[i], results, i))
            for i in range(args.jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Byte-identity: the daemon's bitstream must match a standalone
        # single-shot run of the same JobSpec.
        keys = ["bitstream_fnv", "bitstream_bytes", "config_bits",
                "channel_width", "luts"]
        for i, (spec, got) in enumerate(zip(specs, results)):
            single = json.loads(subprocess.run(
                [args.cli_bin, "job", "-"], input=json.dumps(spec),
                capture_output=True, text=True, check=True).stdout)
            for key in keys + (["bitstream_hex"]
                               if spec.get("return_bitstream") else []):
                assert got.get(key) == single.get(key), (
                    f"job {i}: {key} mismatch: daemon={got.get(key)!r} "
                    f"single-shot={single.get(key)!r}")
            print(f"job {i}: bitstream {got['bitstream_fnv']} "
                  f"({got['bitstream_bytes']} bytes) matches", flush=True)

        # Protocol sanity: malformed input answers an error reply.
        with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
            s.sendall(b"definitely not json\n")
            reply = json.loads(s.makefile("rb").readline())
            assert reply["ok"] is False and reply["reason"] == "bad_request", \
                reply

        metrics = request(port, {"cmd": "metrics"})
        assert metrics["ok"], metrics
        assert metrics["server"]["jobs_finished"] == args.jobs, metrics["server"]

        # Drain shutdown: daemon must exit 0 on its own.
        request(port, {"cmd": "shutdown"})
        assert daemon.wait(timeout=60) == 0, daemon.returncode
        print(f"OK: {args.jobs} concurrent jobs byte-identical, "
              "clean shutdown", flush=True)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Verifies that all C++ sources satisfy .clang-format.
#   scripts/check-format.sh        # check (exit 1 on violations)
#   scripts/check-format.sh --fix  # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "check-format: $CLANG_FORMAT not found; skipping (install clang-format to enable)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check-format: reformatted ${#files[@]} file(s)"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done
if [[ $status -eq 0 ]]; then
  echo "check-format: ${#files[@]} file(s) clean"
fi
exit $status

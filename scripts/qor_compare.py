#!/usr/bin/env python3
"""Compare bench --json runs against a committed QoR baseline.

Usage:
    qor_compare.py CURRENT.json [MORE.json ...]
                   [--baseline scripts/qor_baseline.json]
                   [--enforce] [--update-baseline]
                   [--wall-tolerance PCT] [--wire-tolerance PCT]
                   [--reuse-tolerance PTS]

Each CURRENT.json is a verbatim `--json` capture from one of the bench
binaries; its top-level "bench" field ("flow_qor", "eco_bench", ...)
selects which baseline section it is compared against. The baseline file
holds one section per bench:

    {"benches": {"flow_qor": {...capture...}, "eco_bench": {...}}}

A legacy flat capture (a bare flow_qor run) is still accepted as a
flow_qor-only baseline. Regenerate with:
    build/bench/flow_qor --json > /tmp/q.json
    build/bench/eco_bench --json > /tmp/e.json
    scripts/qor_compare.py /tmp/q.json /tmp/e.json --update-baseline
(every compared metric except wall time is deterministic for a seed).

Regression policy, per flow_qor circuit:
  * channel_width   — any increase is a regression (the headline QoR
                      number of the paper's CAD comparison);
  * wires           — routed wire nodes, > --wire-tolerance % (default 5)
                      counts as a regression;
  * luts, clbs, config_bits — deterministic for a fixed seed, so any
                      increase is a regression;
  * runtime_s       — > --wall-tolerance % (default 50; wall clock on
                      shared CI runners is noisy) counts as a regression;
  * verified / formally_verified — once true in the baseline, must stay
                      true.

Per eco_bench circuit:
  * formally_verified — must be true, unconditionally: the ECO result is
                      only trustworthy with the SAT proof attached;
  * reuse_ratio     — dropping more than --reuse-tolerance percentage
                      points (default 5) below baseline is a regression
                      (reuse is the point of the ECO flow);
  * channel_width   — any increase is a regression;
  * speedup         — wall-clock derived, so a decrease is reported as a
                      note, never a failure.

Per rr_scale circuit:
  * channel_width / wires / luts — deterministic for a seed, 0%%
                      tolerance (any increase is a regression);
  * rr_nodes / patterns / dedup_bytes — deterministic sizes of the
                      deduplicated RR graph, 0%% tolerance: a growing
                      pattern count or resident-byte estimate means the
                      tile dedup regressed;
  * widths_match    — dedup and dense builds must keep agreeing on the
                      minimum channel width (bit-exactness canary);
  * bitstream_hash  — giant-tier streamed bitstream FNV hash must stay
                      byte-identical;
  * dedup_build_s, place_s, route_s, bitgen_s — wall clock, gated at
                      --wall-tolerance;
  * peak_rss_kb     — resident-set ceiling for the giant tier, gated at
                      --rss-tolerance %% (default 25; allocator and OS
                      noise, but a 2x blowup must fail).

A "serve_latency" capture (written by scripts/serve_smoke.py
--artifacts) is reported informationally only: daemon queue-wait and
run-latency quantiles are wall-clock measurements on shared runners, so
they are printed (and compared against a baseline section when one
exists) but never gate the build.

A metric present in the baseline but missing from the current run is a
named regression (a silently dropped metric must not pass the gate), as
is a baseline section with no matching current file (except the
informational serve_latency section).

Improvements and new circuits are reported but never fail.

Exit status: 0 when clean; 0 with warnings by default ("warn-only first
landing" mode for CI); 1 when --enforce is given and any regression
fired; 2 on malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"qor_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(capture):
    return {c["name"]: c for c in capture.get("circuits", [])}


def baseline_sections(raw):
    """Sectioned baseline, or a legacy flat flow_qor capture."""
    if "benches" in raw:
        return dict(raw["benches"])
    if "circuits" in raw:
        return {raw.get("bench", "flow_qor"): raw}
    return {}


class Gate:
    def __init__(self, args):
        self.args = args
        self.regressions = []
        self.notes = []

    def check_metric(self, name, b, c, metric, tolerance_pct):
        bv, cv = b.get(metric), c.get(metric)
        if bv is None:
            return
        if cv is None:
            self.regressions.append(
                f"{name}: metric '{metric}' missing from current run "
                f"(baseline has {bv:g})")
            return
        limit = bv * (1.0 + tolerance_pct / 100.0)
        if cv > limit:
            self.regressions.append(
                f"{name}: {metric} {bv:g} -> {cv:g} "
                f"(+{100.0 * (cv - bv) / bv if bv else 0:.1f}%, "
                f"tolerance {tolerance_pct:g}%)")
        elif cv < bv:
            self.notes.append(f"{name}: {metric} improved {bv:g} -> {cv:g}")

    def compare_flow_qor(self, base, cur):
        for name, b in sorted(base.items()):
            c = cur.get(name)
            if c is None:
                self.regressions.append(
                    f"{name}: circuit missing from current run")
                continue
            self.check_metric(name, b, c, "channel_width", 0.0)
            self.check_metric(name, b, c, "wires", self.args.wire_tolerance)
            self.check_metric(name, b, c, "luts", 0.0)
            self.check_metric(name, b, c, "clbs", 0.0)
            self.check_metric(name, b, c, "config_bits", 0.0)
            self.check_metric(name, b, c, "runtime_s",
                              self.args.wall_tolerance)
            if b.get("verified") and not c.get("verified"):
                self.regressions.append(
                    f"{name}: equivalence verification now fails")
            if b.get("formally_verified") and not c.get("formally_verified"):
                self.regressions.append(
                    f"{name}: formal hand-off verification now fails")
        for name in sorted(set(cur) - set(base)):
            self.notes.append(f"{name}: new circuit (not in baseline)")

    def compare_eco(self, base, cur):
        for name, b in sorted(base.items()):
            c = cur.get(name)
            if c is None:
                self.regressions.append(
                    f"{name}: circuit missing from current run")
                continue
            if not c.get("formally_verified"):
                self.regressions.append(
                    f"{name}: ECO result not formally verified "
                    f"({c.get('error', 'miter not proven')})")
            self.check_metric(name, b, c, "channel_width", 0.0)
            br, cr = b.get("reuse_ratio"), c.get("reuse_ratio")
            if br is not None:
                if cr is None:
                    self.regressions.append(
                        f"{name}: metric 'reuse_ratio' missing from current "
                        f"run (baseline has {br:.3f})")
                elif cr < br - self.args.reuse_tolerance / 100.0:
                    self.regressions.append(
                        f"{name}: reuse_ratio {br:.3f} -> {cr:.3f} "
                        f"(tolerance {self.args.reuse_tolerance:g} points)")
                elif cr > br:
                    self.notes.append(
                        f"{name}: reuse_ratio improved {br:.3f} -> {cr:.3f}")
            bs, cs = b.get("speedup"), c.get("speedup")
            if bs is not None and cs is not None and cs < bs:
                self.notes.append(
                    f"{name}: speedup {bs:.1f}x -> {cs:.1f}x (wall-clock "
                    "metric, informational only)")
        for name in sorted(set(cur) - set(base)):
            self.notes.append(f"{name}: new circuit (not in baseline)")

    def compare_rr_scale(self, base, cur):
        for name, b in sorted(base.items()):
            c = cur.get(name)
            if c is None:
                self.regressions.append(
                    f"{name}: circuit missing from current run")
                continue
            self.check_metric(name, b, c, "channel_width", 0.0)
            self.check_metric(name, b, c, "wires", 0.0)
            self.check_metric(name, b, c, "luts", 0.0)
            self.check_metric(name, b, c, "rr_nodes", 0.0)
            self.check_metric(name, b, c, "patterns", 0.0)
            self.check_metric(name, b, c, "dedup_bytes", 0.0)
            if b.get("widths_match") and not c.get("widths_match"):
                self.regressions.append(
                    f"{name}: dedup/dense minimum channel widths diverged")
            bh, ch = b.get("bitstream_hash"), c.get("bitstream_hash")
            if bh is not None and ch != bh:
                self.regressions.append(
                    f"{name}: bitstream_hash {bh} -> {ch} (streamed "
                    f"bitstream no longer byte-identical)")
            for wall in ("dedup_build_s", "place_s", "route_s", "bitgen_s"):
                self.check_metric(name, b, c, wall, self.args.wall_tolerance)
            self.check_metric(name, b, c, "peak_rss_kb",
                              self.args.rss_tolerance)
        for name in sorted(set(cur) - set(base)):
            self.notes.append(f"{name}: new circuit (not in baseline)")

    def report_serve_latency(self, base_capture, cur_capture):
        """Informational only: daemon latency is wall clock, never a gate."""
        def quantiles(capture, key):
            h = (capture or {}).get(key) or {}
            return h.get("p50"), h.get("p95"), h.get("count")

        jobs = cur_capture.get("jobs", 0)
        for key in ("queue_wait_s", "run_wall_s"):
            p50, p95, count = quantiles(cur_capture, key)
            if count is None:
                continue
            line = (f"serve_latency: {key} p50 {p50:.3f}s p95 {p95:.3f}s "
                    f"over {count} observation(s), {jobs} job(s)")
            _, bp95, _ = quantiles(base_capture, key)
            if bp95 is not None and p95 is not None:
                line += f" (baseline p95 {bp95:.3f}s)"
            self.notes.append(line)

    def compare(self, bench, base_capture, cur_capture):
        if bench == "serve_latency":
            self.report_serve_latency(base_capture, cur_capture)
            return
        base, cur = by_name(base_capture), by_name(cur_capture)
        if bench == "eco_bench":
            self.compare_eco(base, cur)
        elif bench == "rr_scale":
            self.compare_rr_scale(base, cur)
        else:
            self.compare_flow_qor(base, cur)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="+",
                    help="bench --json output(s) to check")
    ap.add_argument("--baseline", default="scripts/qor_baseline.json")
    ap.add_argument("--enforce", action="store_true",
                    help="exit 1 on regressions (default: warn only)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline sections from the current "
                         "files instead of comparing")
    ap.add_argument("--wall-tolerance", type=float, default=50.0,
                    help="allowed runtime_s increase in %% (default 50)")
    ap.add_argument("--wire-tolerance", type=float, default=5.0,
                    help="allowed wire-node increase in %% (default 5)")
    ap.add_argument("--reuse-tolerance", type=float, default=5.0,
                    help="allowed eco reuse_ratio drop in percentage "
                         "points (default 5)")
    ap.add_argument("--rss-tolerance", type=float, default=25.0,
                    help="allowed rr_scale peak_rss_kb increase in %% "
                         "(default 25)")
    args = ap.parse_args()

    currents = {}
    for path in args.current:
        capture = load(path)
        bench = capture.get("bench", "flow_qor")
        if bench in currents:
            print(f"qor_compare: duplicate '{bench}' capture ({path})",
                  file=sys.stderr)
            return 2
        currents[bench] = capture

    if args.update_baseline:
        try:
            sections = baseline_sections(load(args.baseline))
        except SystemExit:
            sections = {}
        sections.update(currents)
        with open(args.baseline, "w") as f:
            json.dump({"benches": sections}, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"qor_compare: baseline {args.baseline} updated "
              f"({', '.join(sorted(sections))})")
        return 0

    sections = baseline_sections(load(args.baseline))
    if not sections:
        print(f"qor_compare: {args.baseline} has no baseline sections",
              file=sys.stderr)
        return 2

    gate = Gate(args)
    for bench, base_capture in sorted(sections.items()):
        cur_capture = currents.get(bench)
        if cur_capture is None:
            if bench == "serve_latency":  # informational, never gates
                gate.notes.append(
                    "serve_latency: no current capture (informational "
                    "section, skipped)")
            else:
                gate.regressions.append(
                    f"{bench}: no current capture for this baseline section")
            continue
        gate.compare(bench, base_capture, cur_capture)
    for bench in sorted(set(currents) - set(sections)):
        gate.notes.append(f"{bench}: new bench (not in baseline)")
        if bench == "serve_latency":
            gate.compare(bench, {}, currents[bench])

    for n in gate.notes:
        print(f"note: {n}")
    for r in gate.regressions:
        print(f"REGRESSION: {r}")

    if not gate.regressions:
        print(f"qor_compare: OK ({len(sections)} bench section(s) vs "
              f"{args.baseline})")
        return 0
    if args.enforce:
        print(f"qor_compare: {len(gate.regressions)} regression(s) — "
              "failing (--enforce)")
        return 1
    print(f"qor_compare: {len(gate.regressions)} regression(s) — warn-only "
          "mode, not failing the build (pass --enforce to gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

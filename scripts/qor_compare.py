#!/usr/bin/env python3
"""Compare a flow_qor --json run against a committed QoR baseline.

Usage:
    qor_compare.py CURRENT.json [--baseline scripts/qor_baseline.json]
                   [--enforce] [--wall-tolerance PCT] [--wire-tolerance PCT]

The baseline is a verbatim `flow_qor --json` capture (see
scripts/qor_baseline.json, regenerated with:
    build/bench/flow_qor --json > scripts/qor_baseline.json
on any machine — every compared metric except wall time is deterministic
for a given seed).

Regression policy, per circuit:
  * channel_width   — any increase is a regression (the headline QoR
                      number of the paper's CAD comparison);
  * wires           — routed wire nodes, > --wire-tolerance % (default 5)
                      counts as a regression;
  * luts, clbs, config_bits — deterministic for a fixed seed, so any
                      increase is a regression;
  * runtime_s       — > --wall-tolerance % (default 50; wall clock on
                      shared CI runners is noisy) counts as a regression;
  * verified        — a circuit that was equivalence-verified in the
                      baseline must stay verified;
  * formally_verified — a circuit whose seven stage hand-offs were
                      SAT-proven in the baseline must stay proven.
Improvements and new circuits are reported but never fail.

Exit status: 0 when clean; 0 with warnings by default ("warn-only first
landing" mode for CI); 1 when --enforce is given and any regression fired.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"qor_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(run):
    return {c["name"]: c for c in run.get("circuits", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="flow_qor --json output to check")
    ap.add_argument("--baseline", default="scripts/qor_baseline.json")
    ap.add_argument("--enforce", action="store_true",
                    help="exit 1 on regressions (default: warn only)")
    ap.add_argument("--wall-tolerance", type=float, default=50.0,
                    help="allowed runtime_s increase in %% (default 50)")
    ap.add_argument("--wire-tolerance", type=float, default=5.0,
                    help="allowed wire-node increase in %% (default 5)")
    args = ap.parse_args()

    base = by_name(load(args.baseline))
    cur = by_name(load(args.current))

    regressions = []
    notes = []

    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            regressions.append(f"{name}: circuit missing from current run")
            continue

        def check(metric, tolerance_pct):
            bv, cv = b.get(metric), c.get(metric)
            if bv is None or cv is None:
                return
            limit = bv * (1.0 + tolerance_pct / 100.0)
            if cv > limit:
                regressions.append(
                    f"{name}: {metric} {bv:g} -> {cv:g} "
                    f"(+{100.0 * (cv - bv) / bv if bv else 0:.1f}%, "
                    f"tolerance {tolerance_pct:g}%)")
            elif cv < bv:
                notes.append(f"{name}: {metric} improved {bv:g} -> {cv:g}")

        check("channel_width", 0.0)
        check("wires", args.wire_tolerance)
        check("luts", 0.0)
        check("clbs", 0.0)
        check("config_bits", 0.0)
        check("runtime_s", args.wall_tolerance)
        if b.get("verified") and not c.get("verified"):
            regressions.append(f"{name}: equivalence verification now fails")
        if b.get("formally_verified") and not c.get("formally_verified"):
            regressions.append(
                f"{name}: formal hand-off verification now fails")

    for name in sorted(set(cur) - set(base)):
        notes.append(f"{name}: new circuit (not in baseline)")

    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}")

    if not regressions:
        print(f"qor_compare: OK ({len(base)} circuits vs {args.baseline})")
        return 0
    if args.enforce:
        print(f"qor_compare: {len(regressions)} regression(s) — failing "
              "(--enforce)")
        return 1
    print(f"qor_compare: {len(regressions)} regression(s) — warn-only mode, "
          "not failing the build (pass --enforce to gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# clang-tidy wrapper: runs the repo's .clang-tidy profile over the
# sources, with warnings-as-errors on a conservative bugprone subset
# (the checks clean today); the rest of the profile reports but does
# not fail. Skips gracefully (exit 0) when clang-tidy is not installed,
# so local builds in minimal containers are not blocked; CI installs
# clang-tidy and gets the real pass.
#
#   scripts/tidy.sh [build-dir]   # build dir must hold compile_commands.json
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not found; skipping (install it for the real pass)"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "tidy: $build_dir/compile_commands.json missing; configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

# Enforced subset: each of these flags a genuine bug pattern with
# near-zero false positives on this codebase. Grow it as more of the
# .clang-tidy profile is verified clean.
errors="bugprone-use-after-move,bugprone-dangling-handle,\
bugprone-string-constructor,bugprone-undefined-memory-manipulation,\
bugprone-unused-raii,bugprone-copy-constructor-init,\
bugprone-incorrect-roundings"

mapfile -t sources < <(git ls-files 'src/*.cpp' 'examples/*.cpp')
echo "tidy: checking ${#sources[@]} files (.clang-tidy profile," \
     "errors on: $errors)"
clang-tidy -p "$build_dir" --quiet --warnings-as-errors="$errors" \
  "${sources[@]}"
echo "tidy: clean"

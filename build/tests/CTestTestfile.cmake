# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/spice_test[1]_include.cmake")
include("/root/repo/build/tests/cells_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/vhdl_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/pack_test[1]_include.cmake")
include("/root/repo/build/tests/place_route_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/timing_power_test[1]_include.cmake")

# Empty dependencies file for place_route_test.
# This may be replaced when dependencies are built.

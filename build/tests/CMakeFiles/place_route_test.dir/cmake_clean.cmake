file(REMOVE_RECURSE
  "CMakeFiles/place_route_test.dir/place_route_test.cpp.o"
  "CMakeFiles/place_route_test.dir/place_route_test.cpp.o.d"
  "place_route_test"
  "place_route_test.pdb"
  "place_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/place_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_cli.dir/amdrel_cli.cpp.o"
  "CMakeFiles/amdrel_cli.dir/amdrel_cli.cpp.o.d"
  "amdrel_cli"
  "amdrel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

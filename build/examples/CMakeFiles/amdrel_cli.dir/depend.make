# Empty dependencies file for amdrel_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for amdrel_process.
# This may be replaced when dependencies are built.

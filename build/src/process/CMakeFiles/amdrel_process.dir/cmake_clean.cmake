file(REMOVE_RECURSE
  "CMakeFiles/amdrel_process.dir/tech018.cpp.o"
  "CMakeFiles/amdrel_process.dir/tech018.cpp.o.d"
  "libamdrel_process.a"
  "libamdrel_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libamdrel_process.a"
)

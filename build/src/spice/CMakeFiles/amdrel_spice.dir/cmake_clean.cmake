file(REMOVE_RECURSE
  "CMakeFiles/amdrel_spice.dir/circuit.cpp.o"
  "CMakeFiles/amdrel_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/amdrel_spice.dir/transient.cpp.o"
  "CMakeFiles/amdrel_spice.dir/transient.cpp.o.d"
  "libamdrel_spice.a"
  "libamdrel_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libamdrel_spice.a"
)

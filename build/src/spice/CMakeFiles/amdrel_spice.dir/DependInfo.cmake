
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/amdrel_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/amdrel_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/spice/CMakeFiles/amdrel_spice.dir/transient.cpp.o" "gcc" "src/spice/CMakeFiles/amdrel_spice.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/amdrel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/amdrel_process.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

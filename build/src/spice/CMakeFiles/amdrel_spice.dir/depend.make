# Empty dependencies file for amdrel_spice.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitgen/bitstream.cpp" "src/bitgen/CMakeFiles/amdrel_bitgen.dir/bitstream.cpp.o" "gcc" "src/bitgen/CMakeFiles/amdrel_bitgen.dir/bitstream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/amdrel_route.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amdrel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/amdrel_place.dir/DependInfo.cmake"
  "/root/repo/build/src/pack/CMakeFiles/amdrel_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/amdrel_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/amdrel_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for amdrel_bitgen.
# This may be replaced when dependencies are built.

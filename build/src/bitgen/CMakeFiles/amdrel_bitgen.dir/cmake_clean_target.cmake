file(REMOVE_RECURSE
  "libamdrel_bitgen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_bitgen.dir/bitstream.cpp.o"
  "CMakeFiles/amdrel_bitgen.dir/bitstream.cpp.o.d"
  "libamdrel_bitgen.a"
  "libamdrel_bitgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_bitgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

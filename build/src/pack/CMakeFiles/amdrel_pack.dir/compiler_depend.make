# Empty compiler generated dependencies file for amdrel_pack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libamdrel_pack.a"
)

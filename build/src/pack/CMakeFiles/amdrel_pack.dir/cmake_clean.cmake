file(REMOVE_RECURSE
  "CMakeFiles/amdrel_pack.dir/pack.cpp.o"
  "CMakeFiles/amdrel_pack.dir/pack.cpp.o.d"
  "libamdrel_pack.a"
  "libamdrel_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

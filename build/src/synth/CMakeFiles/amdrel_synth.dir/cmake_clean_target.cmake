file(REMOVE_RECURSE
  "libamdrel_synth.a"
)

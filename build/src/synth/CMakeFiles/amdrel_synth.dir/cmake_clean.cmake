file(REMOVE_RECURSE
  "CMakeFiles/amdrel_synth.dir/lutmap.cpp.o"
  "CMakeFiles/amdrel_synth.dir/lutmap.cpp.o.d"
  "CMakeFiles/amdrel_synth.dir/opt.cpp.o"
  "CMakeFiles/amdrel_synth.dir/opt.cpp.o.d"
  "libamdrel_synth.a"
  "libamdrel_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for amdrel_synth.
# This may be replaced when dependencies are built.

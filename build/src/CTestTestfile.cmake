# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("process")
subdirs("spice")
subdirs("cells")
subdirs("netlist")
subdirs("vhdl")
subdirs("synth")
subdirs("bench_gen")
subdirs("arch")
subdirs("pack")
subdirs("place")
subdirs("route")
subdirs("timing")
subdirs("power")
subdirs("bitgen")
subdirs("flow")

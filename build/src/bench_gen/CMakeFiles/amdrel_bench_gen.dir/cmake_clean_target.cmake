file(REMOVE_RECURSE
  "libamdrel_bench_gen.a"
)

# Empty dependencies file for amdrel_bench_gen.
# This may be replaced when dependencies are built.

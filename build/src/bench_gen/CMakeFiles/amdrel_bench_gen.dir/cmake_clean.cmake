file(REMOVE_RECURSE
  "CMakeFiles/amdrel_bench_gen.dir/bench_gen.cpp.o"
  "CMakeFiles/amdrel_bench_gen.dir/bench_gen.cpp.o.d"
  "libamdrel_bench_gen.a"
  "libamdrel_bench_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_bench_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

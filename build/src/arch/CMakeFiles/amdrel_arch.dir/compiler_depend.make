# Empty compiler generated dependencies file for amdrel_arch.
# This may be replaced when dependencies are built.

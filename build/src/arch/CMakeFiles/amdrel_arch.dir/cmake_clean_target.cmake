file(REMOVE_RECURSE
  "libamdrel_arch.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_arch.dir/arch.cpp.o"
  "CMakeFiles/amdrel_arch.dir/arch.cpp.o.d"
  "libamdrel_arch.a"
  "libamdrel_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for amdrel_netlist.
# This may be replaced when dependencies are built.

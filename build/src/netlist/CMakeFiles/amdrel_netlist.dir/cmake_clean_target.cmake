file(REMOVE_RECURSE
  "libamdrel_netlist.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_netlist.dir/blif.cpp.o"
  "CMakeFiles/amdrel_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/amdrel_netlist.dir/edif.cpp.o"
  "CMakeFiles/amdrel_netlist.dir/edif.cpp.o.d"
  "CMakeFiles/amdrel_netlist.dir/network.cpp.o"
  "CMakeFiles/amdrel_netlist.dir/network.cpp.o.d"
  "CMakeFiles/amdrel_netlist.dir/simulate.cpp.o"
  "CMakeFiles/amdrel_netlist.dir/simulate.cpp.o.d"
  "CMakeFiles/amdrel_netlist.dir/truth_table.cpp.o"
  "CMakeFiles/amdrel_netlist.dir/truth_table.cpp.o.d"
  "libamdrel_netlist.a"
  "libamdrel_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for amdrel_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libamdrel_util.a"
)

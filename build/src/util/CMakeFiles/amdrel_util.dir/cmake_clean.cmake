file(REMOVE_RECURSE
  "CMakeFiles/amdrel_util.dir/error.cpp.o"
  "CMakeFiles/amdrel_util.dir/error.cpp.o.d"
  "CMakeFiles/amdrel_util.dir/log.cpp.o"
  "CMakeFiles/amdrel_util.dir/log.cpp.o.d"
  "CMakeFiles/amdrel_util.dir/rng.cpp.o"
  "CMakeFiles/amdrel_util.dir/rng.cpp.o.d"
  "CMakeFiles/amdrel_util.dir/strings.cpp.o"
  "CMakeFiles/amdrel_util.dir/strings.cpp.o.d"
  "CMakeFiles/amdrel_util.dir/table.cpp.o"
  "CMakeFiles/amdrel_util.dir/table.cpp.o.d"
  "CMakeFiles/amdrel_util.dir/thread_pool.cpp.o"
  "CMakeFiles/amdrel_util.dir/thread_pool.cpp.o.d"
  "libamdrel_util.a"
  "libamdrel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

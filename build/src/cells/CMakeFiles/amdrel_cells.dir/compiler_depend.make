# Empty compiler generated dependencies file for amdrel_cells.
# This may be replaced when dependencies are built.

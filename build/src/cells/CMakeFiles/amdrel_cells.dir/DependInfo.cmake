
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/characterize.cpp" "src/cells/CMakeFiles/amdrel_cells.dir/characterize.cpp.o" "gcc" "src/cells/CMakeFiles/amdrel_cells.dir/characterize.cpp.o.d"
  "/root/repo/src/cells/detff.cpp" "src/cells/CMakeFiles/amdrel_cells.dir/detff.cpp.o" "gcc" "src/cells/CMakeFiles/amdrel_cells.dir/detff.cpp.o.d"
  "/root/repo/src/cells/lut.cpp" "src/cells/CMakeFiles/amdrel_cells.dir/lut.cpp.o" "gcc" "src/cells/CMakeFiles/amdrel_cells.dir/lut.cpp.o.d"
  "/root/repo/src/cells/primitives.cpp" "src/cells/CMakeFiles/amdrel_cells.dir/primitives.cpp.o" "gcc" "src/cells/CMakeFiles/amdrel_cells.dir/primitives.cpp.o.d"
  "/root/repo/src/cells/routing_expt.cpp" "src/cells/CMakeFiles/amdrel_cells.dir/routing_expt.cpp.o" "gcc" "src/cells/CMakeFiles/amdrel_cells.dir/routing_expt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/amdrel_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/amdrel_process.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amdrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libamdrel_cells.a"
)

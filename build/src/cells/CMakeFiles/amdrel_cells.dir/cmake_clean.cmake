file(REMOVE_RECURSE
  "CMakeFiles/amdrel_cells.dir/characterize.cpp.o"
  "CMakeFiles/amdrel_cells.dir/characterize.cpp.o.d"
  "CMakeFiles/amdrel_cells.dir/detff.cpp.o"
  "CMakeFiles/amdrel_cells.dir/detff.cpp.o.d"
  "CMakeFiles/amdrel_cells.dir/lut.cpp.o"
  "CMakeFiles/amdrel_cells.dir/lut.cpp.o.d"
  "CMakeFiles/amdrel_cells.dir/primitives.cpp.o"
  "CMakeFiles/amdrel_cells.dir/primitives.cpp.o.d"
  "CMakeFiles/amdrel_cells.dir/routing_expt.cpp.o"
  "CMakeFiles/amdrel_cells.dir/routing_expt.cpp.o.d"
  "libamdrel_cells.a"
  "libamdrel_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

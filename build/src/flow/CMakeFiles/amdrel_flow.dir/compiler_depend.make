# Empty compiler generated dependencies file for amdrel_flow.
# This may be replaced when dependencies are built.

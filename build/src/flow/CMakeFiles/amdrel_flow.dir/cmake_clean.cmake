file(REMOVE_RECURSE
  "CMakeFiles/amdrel_flow.dir/flow.cpp.o"
  "CMakeFiles/amdrel_flow.dir/flow.cpp.o.d"
  "libamdrel_flow.a"
  "libamdrel_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow.cpp" "src/flow/CMakeFiles/amdrel_flow.dir/flow.cpp.o" "gcc" "src/flow/CMakeFiles/amdrel_flow.dir/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitgen/CMakeFiles/amdrel_bitgen.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/amdrel_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/amdrel_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/amdrel_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/amdrel_place.dir/DependInfo.cmake"
  "/root/repo/build/src/pack/CMakeFiles/amdrel_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/amdrel_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/amdrel_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/vhdl/CMakeFiles/amdrel_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/amdrel_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amdrel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/amdrel_process.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libamdrel_flow.a"
)

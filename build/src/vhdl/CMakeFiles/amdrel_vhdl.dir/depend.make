# Empty dependencies file for amdrel_vhdl.
# This may be replaced when dependencies are built.

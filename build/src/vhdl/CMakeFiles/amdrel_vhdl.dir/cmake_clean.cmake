file(REMOVE_RECURSE
  "CMakeFiles/amdrel_vhdl.dir/lexer.cpp.o"
  "CMakeFiles/amdrel_vhdl.dir/lexer.cpp.o.d"
  "CMakeFiles/amdrel_vhdl.dir/parser.cpp.o"
  "CMakeFiles/amdrel_vhdl.dir/parser.cpp.o.d"
  "CMakeFiles/amdrel_vhdl.dir/synth.cpp.o"
  "CMakeFiles/amdrel_vhdl.dir/synth.cpp.o.d"
  "libamdrel_vhdl.a"
  "libamdrel_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

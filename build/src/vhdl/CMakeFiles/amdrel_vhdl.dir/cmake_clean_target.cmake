file(REMOVE_RECURSE
  "libamdrel_vhdl.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vhdl/lexer.cpp" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/lexer.cpp.o" "gcc" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/lexer.cpp.o.d"
  "/root/repo/src/vhdl/parser.cpp" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/parser.cpp.o" "gcc" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/parser.cpp.o.d"
  "/root/repo/src/vhdl/synth.cpp" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/synth.cpp.o" "gcc" "src/vhdl/CMakeFiles/amdrel_vhdl.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/amdrel_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/amdrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

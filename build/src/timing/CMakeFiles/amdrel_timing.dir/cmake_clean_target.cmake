file(REMOVE_RECURSE
  "libamdrel_timing.a"
)

# Empty dependencies file for amdrel_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_timing.dir/timing.cpp.o"
  "CMakeFiles/amdrel_timing.dir/timing.cpp.o.d"
  "libamdrel_timing.a"
  "libamdrel_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_place.dir/multiseed.cpp.o"
  "CMakeFiles/amdrel_place.dir/multiseed.cpp.o.d"
  "CMakeFiles/amdrel_place.dir/place.cpp.o"
  "CMakeFiles/amdrel_place.dir/place.cpp.o.d"
  "libamdrel_place.a"
  "libamdrel_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libamdrel_place.a"
)

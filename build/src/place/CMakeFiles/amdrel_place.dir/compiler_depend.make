# Empty compiler generated dependencies file for amdrel_place.
# This may be replaced when dependencies are built.

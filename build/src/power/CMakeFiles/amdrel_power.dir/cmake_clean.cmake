file(REMOVE_RECURSE
  "CMakeFiles/amdrel_power.dir/power.cpp.o"
  "CMakeFiles/amdrel_power.dir/power.cpp.o.d"
  "libamdrel_power.a"
  "libamdrel_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for amdrel_power.
# This may be replaced when dependencies are built.

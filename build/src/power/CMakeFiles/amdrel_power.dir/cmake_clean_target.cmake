file(REMOVE_RECURSE
  "libamdrel_power.a"
)

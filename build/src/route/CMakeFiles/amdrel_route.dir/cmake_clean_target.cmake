file(REMOVE_RECURSE
  "libamdrel_route.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/amdrel_route.dir/pathfinder.cpp.o"
  "CMakeFiles/amdrel_route.dir/pathfinder.cpp.o.d"
  "CMakeFiles/amdrel_route.dir/route_files.cpp.o"
  "CMakeFiles/amdrel_route.dir/route_files.cpp.o.d"
  "CMakeFiles/amdrel_route.dir/rr_graph.cpp.o"
  "CMakeFiles/amdrel_route.dir/rr_graph.cpp.o.d"
  "libamdrel_route.a"
  "libamdrel_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdrel_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

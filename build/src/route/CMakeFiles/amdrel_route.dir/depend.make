# Empty dependencies file for amdrel_route.
# This may be replaced when dependencies are built.

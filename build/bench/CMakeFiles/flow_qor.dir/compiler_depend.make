# Empty compiler generated dependencies file for flow_qor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flow_qor.dir/flow_qor.cpp.o"
  "CMakeFiles/flow_qor.dir/flow_qor.cpp.o.d"
  "flow_qor"
  "flow_qor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_qor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

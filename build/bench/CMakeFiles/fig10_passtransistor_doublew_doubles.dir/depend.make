# Empty dependencies file for fig10_passtransistor_doublew_doubles.
# This may be replaced when dependencies are built.

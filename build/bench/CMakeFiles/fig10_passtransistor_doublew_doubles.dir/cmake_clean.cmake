file(REMOVE_RECURSE
  "CMakeFiles/fig10_passtransistor_doublew_doubles.dir/fig10_passtransistor_doublew_doubles.cpp.o"
  "CMakeFiles/fig10_passtransistor_doublew_doubles.dir/fig10_passtransistor_doublew_doubles.cpp.o.d"
  "fig10_passtransistor_doublew_doubles"
  "fig10_passtransistor_doublew_doubles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_passtransistor_doublew_doubles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tristate_buffer_sizing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tristate_buffer_sizing.dir/tristate_buffer_sizing.cpp.o"
  "CMakeFiles/tristate_buffer_sizing.dir/tristate_buffer_sizing.cpp.o.d"
  "tristate_buffer_sizing"
  "tristate_buffer_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tristate_buffer_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table2_ble_clockgate.dir/table2_ble_clockgate.cpp.o"
  "CMakeFiles/table2_ble_clockgate.dir/table2_ble_clockgate.cpp.o.d"
  "table2_ble_clockgate"
  "table2_ble_clockgate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ble_clockgate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_ble_clockgate.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig9_passtransistor_minw_doubles.
# This may be replaced when dependencies are built.

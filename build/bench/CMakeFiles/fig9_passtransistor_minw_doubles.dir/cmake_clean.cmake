file(REMOVE_RECURSE
  "CMakeFiles/fig9_passtransistor_minw_doubles.dir/fig9_passtransistor_minw_doubles.cpp.o"
  "CMakeFiles/fig9_passtransistor_minw_doubles.dir/fig9_passtransistor_minw_doubles.cpp.o.d"
  "fig9_passtransistor_minw_doubles"
  "fig9_passtransistor_minw_doubles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_passtransistor_minw_doubles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cad_microbench.
# This may be replaced when dependencies are built.

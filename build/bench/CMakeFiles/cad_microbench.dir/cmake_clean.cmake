file(REMOVE_RECURSE
  "CMakeFiles/cad_microbench.dir/cad_microbench.cpp.o"
  "CMakeFiles/cad_microbench.dir/cad_microbench.cpp.o.d"
  "cad_microbench"
  "cad_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

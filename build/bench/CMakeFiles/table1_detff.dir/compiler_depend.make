# Empty compiler generated dependencies file for table1_detff.
# This may be replaced when dependencies are built.

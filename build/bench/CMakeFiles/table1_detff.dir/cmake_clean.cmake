file(REMOVE_RECURSE
  "CMakeFiles/table1_detff.dir/table1_detff.cpp.o"
  "CMakeFiles/table1_detff.dir/table1_detff.cpp.o.d"
  "table1_detff"
  "table1_detff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_detff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table3_clb_clockgate.
# This may be replaced when dependencies are built.

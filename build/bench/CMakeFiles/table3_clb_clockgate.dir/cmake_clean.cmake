file(REMOVE_RECURSE
  "CMakeFiles/table3_clb_clockgate.dir/table3_clb_clockgate.cpp.o"
  "CMakeFiles/table3_clb_clockgate.dir/table3_clb_clockgate.cpp.o.d"
  "table3_clb_clockgate"
  "table3_clb_clockgate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_clb_clockgate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig8_passtransistor_minw_mins.dir/fig8_passtransistor_minw_mins.cpp.o"
  "CMakeFiles/fig8_passtransistor_minw_mins.dir/fig8_passtransistor_minw_mins.cpp.o.d"
  "fig8_passtransistor_minw_mins"
  "fig8_passtransistor_minw_mins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_passtransistor_minw_mins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig8_passtransistor_minw_mins.
# This may be replaced when dependencies are built.

// Reproduces the flow-level evaluation implied by Fig. 11: every tool of
// the VHDL→bitstream pipeline exercised stage by stage on a benchmark
// suite, reporting per-stage QoR and runtime — the table an architecture
// paper built on this toolset would show.
//
// Runs the pipeline through flow::FlowSession, so the per-stage runtimes
// come from the session's own StageMetrics and --trace/--progress expose
// the full obs event stream (flow spans plus the kernel spans beneath).
// Each circuit is described as a flow::JobSpec (source bench_gen) — the
// same description an amdrel_serve client would submit.

#include <cstdint>
#include <cstdio>
#include <exception>

#include "bench_common.hpp"
#include "bench_gen/bench_gen.hpp"
#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "netlist/blif.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amdrel;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  if (!args.json) {
    std::printf("Fig. 11 flow evaluation: per-stage QoR and runtime\n\n");
  }

  Table table({"circuit", "gates", "LUTs", "CLBs", "W", "wires", "bits",
               "crit ns", "mW", "runtime s", "verified", "formal"});
  bench::JsonWriter w;
  if (args.json) {
    w.begin_object();
    w.field("bench", "flow_qor");
    w.begin_array("circuits");
  }

  int failures = 0;
  // A compact subset of the suite (the full suite runs in mcnc_flow).
  auto suite = bench_gen::mcnc_like_suite();
  suite.resize(4);
  for (const auto& spec : suite) {
    try {
      auto net = bench_gen::generate(spec);
      flow::JobSpec job = args.spec;  // shared CLI knobs (--seed etc.)
      job.label = spec.name;
      job.source = flow::JobSpec::Source::kBenchGen;
      job.bench = spec;
      if (!args.verify_given) {
        // Default includes the formal handoff proofs.
        job.options.verify_mode = flow::VerifyMode::kBoth;
      }
      job.options.search_min_channel_width = true;
      flow::FlowSession session(job);
      session.run_until(job.until);
      const flow::FlowResult& r = session.result();
      double secs = 0.0;
      std::uint64_t formal_checks = 0;
      for (int s = 0; s < flow::kNumStages; ++s) {
        const auto& sm = r.stage_metrics[static_cast<std::size_t>(s)];
        secs += sm.wall_s;
        formal_checks += sm.counter("verify.formal_checks");
      }
      // All seven hand-offs must have been proven by the SAT checker.
      const bool formally_verified = formal_checks == 7;
      if (args.json) {
        w.object_in_array();
        w.field("name", spec.name);
        w.field("gates", static_cast<int>(net.gates().size()));
        w.field("luts", r.map_stats.luts);
        w.field("clbs", static_cast<int>(r.packed->clusters().size()));
        w.field("channel_width", r.channel_width);
        w.field("wires", r.routing.total_wire_nodes);
        w.field("config_bits", static_cast<double>(r.bitstream.config_bits()));
        w.field("critical_path_ns", r.timing.critical_path_s * 1e9);
        w.field("power_mw", r.power.total_w * 1e3);
        w.field("runtime_s", secs);
        for (int s = 0; s < flow::kNumStages; ++s) {
          const auto stage = static_cast<flow::Stage>(s);
          const std::string key = std::string(flow::stage_name(stage)) + "_s";
          w.field(key.c_str(), r.metrics(stage).wall_s);
        }
        w.field("peak_rss_kb",
                static_cast<double>(r.metrics(flow::Stage::kBitgen).peak_rss_kb));
        w.field("verified", true);
        w.field("formally_verified", formally_verified);
        w.end_object();
      } else {
        table.add_row(
            {spec.name, std::to_string(static_cast<int>(net.gates().size())),
             std::to_string(r.map_stats.luts),
             std::to_string(static_cast<int>(r.packed->clusters().size())),
             std::to_string(r.channel_width),
             std::to_string(r.routing.total_wire_nodes),
             std::to_string(r.bitstream.config_bits()),
             strprintf("%.2f", r.timing.critical_path_s * 1e9),
             strprintf("%.2f", r.power.total_w * 1e3),
             strprintf("%.1f", secs), "yes",
             formally_verified ? "yes" : "no"});
        std::printf("  %-12s ok\n", spec.name.c_str());
      }
    } catch (const std::exception& e) {
      ++failures;
      if (args.json) {
        w.object_in_array();
        w.field("name", spec.name);
        w.field("verified", false);
        w.field("formally_verified", false);
        w.field("error", e.what());
        w.end_object();
      } else {
        std::printf("  %-12s FAILED: %s\n", spec.name.c_str(), e.what());
      }
    }
  }

  if (args.json) {
    w.end_array();
    w.field("failures", failures);
    w.end_object();
    w.finish();
    return failures == 0 ? 0 : 1;
  }

  std::printf("\n%s", table.to_string().c_str());
  std::printf("\n'verified' = random-vector sequential equivalence of the "
              "decoded bitstream vs the mapped netlist\n"
              "'formal'   = all seven stage hand-offs proven by the SAT "
              "equivalence checker\n");
  return failures == 0 ? 0 : 1;
}

// Reproduces the flow-level evaluation implied by Fig. 11: every tool of
// the VHDL→bitstream pipeline exercised stage by stage on a benchmark
// suite, reporting per-stage QoR and runtime — the table an architecture
// paper built on this toolset would show.

#include <chrono>
#include <cstdio>
#include <exception>

#include "bench_gen/bench_gen.hpp"
#include "flow/flow.hpp"
#include "netlist/blif.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  using Clock = std::chrono::steady_clock;
  std::printf("Fig. 11 flow evaluation: per-stage QoR and runtime\n\n");

  Table table({"circuit", "gates", "LUTs", "CLBs", "W", "wires", "bits",
               "crit ns", "mW", "runtime s", "verified"});

  // A compact subset of the suite (the full suite runs in mcnc_flow).
  auto suite = bench_gen::mcnc_like_suite();
  suite.resize(4);
  for (const auto& spec : suite) {
    try {
      auto net = bench_gen::generate(spec);
      flow::FlowOptions options;
      options.verify_each_stage = true;  // includes bitstream equivalence
      options.search_min_channel_width = true;
      auto t0 = Clock::now();
      auto r = flow::run_flow_from_network(net, options);
      double secs = std::chrono::duration<double>(Clock::now() - t0).count();
      table.add_row(
          {spec.name, std::to_string(static_cast<int>(net.gates().size())),
           std::to_string(r.map_stats.luts),
           std::to_string(static_cast<int>(r.packed->clusters().size())),
           std::to_string(r.channel_width),
           std::to_string(r.routing.total_wire_nodes),
           std::to_string(r.bitstream.config_bits()),
           strprintf("%.2f", r.timing.critical_path_s * 1e9),
           strprintf("%.2f", r.power.total_w * 1e3),
           strprintf("%.1f", secs), "yes"});
      std::printf("  %-12s ok\n", spec.name.c_str());
    } catch (const std::exception& e) {
      std::printf("  %-12s FAILED: %s\n", spec.name.c_str(), e.what());
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\n'verified' = random-vector sequential equivalence of the "
              "decoded bitstream vs the mapped netlist\n");
  return 0;
}

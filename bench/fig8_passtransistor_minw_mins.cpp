// Reproduces Fig. 8: E·D·A product vs routing pass-transistor width with
// minimum-width wires at minimum spacing. Paper: optimum ~10–16× minimum
// for wire lengths 1/2/4; larger (64×) for length 8.

#include "fig_passtransistor_common.hpp"

int main(int argc, char** argv) {
  const auto args = amdrel::bench::parse_bench_args(argc, argv);
  amdrel::bench::run_passtransistor_figure(
      "fig8_passtransistor_minw_mins",
      "Fig. 8: minimum wire width, minimum spacing",
      amdrel::process::WireWidth::kMinimum,
      amdrel::process::WireSpacing::kMinimum, args);
  if (!args.json) {
    std::printf("\npaper: optimum 10-16x for L=1,2,4; 64x for L=8\n");
  }
  return 0;
}

// Reproduces the §3.3.2 tri-state buffer exploration (results "omitted for
// lack of space" in the paper): routing switches as pairs of two-stage
// tri-state buffers, output-stage width swept up to 16× minimum (beyond
// which the paper notes energy becomes prohibitive). The paper's final
// selection — pass transistors on length-1, min-width double-spaced wires
// — is checked at the end.

#include <cstdio>

#include "cells/routing_expt.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  using namespace amdrel::cells;
  std::printf("S3.3.2: tri-state buffer routing switch sizing "
              "(min wire width, double spacing)\n\n");

  const double widths[] = {1, 2, 4, 8, 16};
  const int lengths[] = {1, 4};
  Table table({"W/Wmin", "L", "delay (ps)", "energy (fJ)", "area (um2)",
               "E*D*A (norm)"});
  double base = 0;
  for (int len : lengths) {
    for (double w : widths) {
      RoutingExptOptions opt;
      opt.style = SwitchStyle::kTriStateBuffer;
      opt.wire_length = len;
      opt.switch_width_x = w;
      opt.wire_spacing = process::WireSpacing::kDouble;
      opt.dt = 5e-12;
      auto r = run_routing_experiment(opt);
      if (base == 0) base = r.eda;
      table.add_row({strprintf("%.0f", w), std::to_string(len),
                     strprintf("%.0f", r.delay_s * 1e12),
                     strprintf("%.0f", r.energy_j * 1e15),
                     strprintf("%.0f", r.area_um2),
                     strprintf("%.3f", r.eda / base)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Compare the best tri-state configuration against the selected pass
  // transistor switch (10x, L=1) on the same wires.
  RoutingExptOptions pass;
  pass.wire_length = 1;
  pass.switch_width_x = 10;
  pass.wire_spacing = process::WireSpacing::kDouble;
  pass.dt = 5e-12;
  auto rp = run_routing_experiment(pass);
  std::printf("selected pass-transistor switch (10x, L=1, double spacing): "
              "delay %.0f ps, energy %.0f fJ, area %.0f um2\n",
              rp.delay_s * 1e12, rp.energy_j * 1e15, rp.area_um2);
  std::printf("paper conclusion: pass transistors with length-1 wires at "
              "minimum width / double spacing give the low-energy fabric\n");
  return 0;
}

// Reproduces the §3.3.2 tri-state buffer exploration (results "omitted for
// lack of space" in the paper): routing switches as pairs of two-stage
// tri-state buffers, output-stage width swept up to 16× minimum (beyond
// which the paper notes energy becomes prohibitive). The paper's final
// selection — pass transistors on length-1, min-width double-spaced wires
// — is checked at the end.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cells/routing_expt.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace amdrel;
  using namespace amdrel::cells;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  const std::vector<double> widths = {1, 2, 4, 8, 16};
  const std::vector<int> lengths = {1, 4};

  // The sweep points plus the reference pass-transistor switch are
  // independent testbenches; run them on the pool.
  const std::size_t n_sweep = lengths.size() * widths.size();
  std::vector<RoutingExptResult> res(n_sweep + 1);
  parallel_for(
      n_sweep + 1,
      [&](std::size_t i) {
        RoutingExptOptions opt;
        opt.wire_spacing = process::WireSpacing::kDouble;
        opt.dt = 5e-12;
        opt.solver = args.solver();
        if (i < n_sweep) {
          opt.style = SwitchStyle::kTriStateBuffer;
          opt.wire_length = lengths[i / widths.size()];
          opt.switch_width_x = widths[i % widths.size()];
        } else {
          // Selected pass-transistor switch (10x, L=1) on the same wires.
          opt.wire_length = 1;
          opt.switch_width_x = 10;
        }
        res[i] = run_routing_experiment(opt);
      },
      static_cast<std::size_t>(args.threads));
  const double base = res[0].eda;
  const RoutingExptResult& rp = res[n_sweep];

  if (args.json) {
    bench::JsonWriter j;
    j.begin_object();
    j.field("bench", "tristate_buffer_sizing");
    j.begin_array("points");
    for (std::size_t i = 0; i < n_sweep; ++i) {
      j.object_in_array();
      j.field("length", lengths[i / widths.size()]);
      j.field("width_x", widths[i % widths.size()]);
      j.field("delay_ps", res[i].delay_s * 1e12);
      j.field("energy_fj", res[i].energy_j * 1e15);
      j.field("area_um2", res[i].area_um2);
      j.field("eda_norm", res[i].eda / base);
      j.end_object();
    }
    j.end_array();
    j.field("pass_transistor_delay_ps", rp.delay_s * 1e12);
    j.field("pass_transistor_energy_fj", rp.energy_j * 1e15);
    j.field("pass_transistor_area_um2", rp.area_um2);
    j.end_object();
    j.finish();
    return 0;
  }

  std::printf("S3.3.2: tri-state buffer routing switch sizing "
              "(min wire width, double spacing)\n\n");
  Table table({"W/Wmin", "L", "delay (ps)", "energy (fJ)", "area (um2)",
               "E*D*A (norm)"});
  for (std::size_t i = 0; i < n_sweep; ++i) {
    const auto& r = res[i];
    table.add_row({strprintf("%.0f", widths[i % widths.size()]),
                   std::to_string(lengths[i / widths.size()]),
                   strprintf("%.0f", r.delay_s * 1e12),
                   strprintf("%.0f", r.energy_j * 1e15),
                   strprintf("%.0f", r.area_um2),
                   strprintf("%.3f", r.eda / base)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("selected pass-transistor switch (10x, L=1, double spacing): "
              "delay %.0f ps, energy %.0f fJ, area %.0f um2\n",
              rp.delay_s * 1e12, rp.energy_j * 1e15, rp.area_um2);
  std::printf("paper conclusion: pass transistors with length-1 wires at "
              "minimum width / double spacing give the low-energy fabric\n");
  return 0;
}

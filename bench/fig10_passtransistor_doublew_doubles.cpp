// Reproduces Fig. 10: E·D·A vs switch width with DOUBLE-width wires at
// double spacing (lower wire resistance, higher area capacitance).
// Paper: optimum 10× for L=1,2,4; 16× for L=8.

#include "fig_passtransistor_common.hpp"

int main(int argc, char** argv) {
  const auto args = amdrel::bench::parse_bench_args(argc, argv);
  amdrel::bench::run_passtransistor_figure(
      "fig10_passtransistor_doublew_doubles",
      "Fig. 10: double wire width, double spacing",
      amdrel::process::WireWidth::kDouble,
      amdrel::process::WireSpacing::kDouble, args);
  if (!args.json) {
    std::printf("\npaper: optimum 10x for L=1,2,4; 16x for L=8\n");
  }
  return 0;
}

// google-benchmark microbenchmarks of the CAD kernels (mapper, packer,
// placer, router, bitstream codec) — the performance side of the paper's
// "runs on a low-cost PC" claim (§4.1) — plus the transient simulator's
// sparse and dense MNA backends on the Table-1 DETFF testbench.

#include <benchmark/benchmark.h>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "cells/characterize.hpp"
#include "flow/flow.hpp"
#include "netlist/simulate.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "synth/lutmap.hpp"

namespace {

using namespace amdrel;

netlist::Network make_mapped(int gates, int latches) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 10;
  spec.n_gates = gates;
  spec.n_latches = latches;
  spec.seed = 5;
  auto net = bench_gen::generate(spec);
  return synth::map_to_luts(net, synth::LutMapOptions{4, 8});
}

void BM_LutMap(benchmark::State& state) {
  bench_gen::BenchSpec spec;
  spec.n_gates = static_cast<int>(state.range(0));
  spec.seed = 5;
  auto net = bench_gen::generate(spec);
  for (auto _ : state) {
    auto mapped = synth::map_to_luts(net, synth::LutMapOptions{4, 8});
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LutMap)->Arg(200)->Arg(800);

void BM_Pack(benchmark::State& state) {
  auto mapped = make_mapped(static_cast<int>(state.range(0)), 32);
  arch::ArchSpec spec;
  for (auto _ : state) {
    pack::PackedNetlist packed(mapped, spec);
    benchmark::DoNotOptimize(packed.clusters().size());
  }
}
BENCHMARK(BM_Pack)->Arg(400)->Arg(1200);

void BM_PlaceAnneal(benchmark::State& state) {
  auto mapped = make_mapped(static_cast<int>(state.range(0)), 16);
  arch::ArchSpec spec;
  pack::PackedNetlist packed(mapped, spec);
  for (auto _ : state) {
    place::Placement placement(packed, spec);
    place::Placement::AnnealOptions opt;
    placement.anneal(opt);
    benchmark::DoNotOptimize(placement.total_cost());
  }
}
BENCHMARK(BM_PlaceAnneal)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Route(benchmark::State& state) {
  auto mapped = make_mapped(static_cast<int>(state.range(0)), 16);
  arch::ArchSpec spec;
  pack::PackedNetlist packed(mapped, spec);
  place::Placement placement(packed, spec);
  place::Placement::AnnealOptions opt;
  placement.anneal(opt);
  for (auto _ : state) {
    route::RrGraph graph(placement, spec, spec.channel_width);
    auto result = route::route_all(graph, placement);
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_Route)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_BitstreamCodec(benchmark::State& state) {
  auto mapped = make_mapped(250, 16);
  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kOff;
  auto r = flow::run_flow_from_network(mapped, options);
  for (auto _ : state) {
    auto bytes = bitgen::serialize(r.bitstream);
    auto back = bitgen::deserialize(bytes);
    benchmark::DoNotOptimize(back.config_bits());
  }
}
BENCHMARK(BM_BitstreamCodec);

void BM_NetlistSimulation(benchmark::State& state) {
  auto mapped = make_mapped(600, 48);
  netlist::Simulator sim(mapped);
  Rng rng(7);
  for (auto _ : state) {
    for (netlist::SignalId s : mapped.inputs()) {
      sim.set_input(s, rng.next_bool());
    }
    sim.propagate();
    sim.step_clock();
    benchmark::DoNotOptimize(sim.output(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(mapped.gates().size()));
}
BENCHMARK(BM_NetlistSimulation);

void transient_detff(benchmark::State& state, spice::MnaSolver solver) {
  cells::DetffBenchOptions opt;
  opt.solver = solver;
  for (auto _ : state) {
    auto m = cells::characterize_detff(cells::DetffKind::kLlopis1, opt);
    benchmark::DoNotOptimize(m.energy_j);
  }
}

void BM_TransientSparse(benchmark::State& state) {
  transient_detff(state, spice::MnaSolver::kSparse);
}
BENCHMARK(BM_TransientSparse)->Unit(benchmark::kMillisecond);

void BM_TransientDense(benchmark::State& state) {
  transient_detff(state, spice::MnaSolver::kDense);
}
BENCHMARK(BM_TransientDense)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

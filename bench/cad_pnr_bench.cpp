// CAD place & route kernel benchmark: placer move throughput, fixed-width
// routing time, and minimum-channel-width search wall time on the
// `mcnc_like_suite` subset, comparing the incremental kernels against
// their full-recompute oracle paths.
//
//   --json         machine-readable output (one JSON object on stdout)
//   --threads N    probe threads for the min-W search waves (0 = hardware
//                  concurrency); results are independent of this value
//   --incremental  run only the incremental kernels (no oracle baseline)
//   --oracle       run only the oracle kernels (no speedup ratios)
//
// "e2e" is the routed flow — anneal plus routing at the relaxed width
// minW+2 (VPR's low-stress convention). The min-W binary search is timed
// as its own metric; both modes must agree on the width it returns.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_gen/bench_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One mode's (incremental or oracle) measurements for one circuit.
struct ModeResult {
  double place_s = 0;
  long long moves = 0;
  double bbox_cost = 0;
  int min_w = -1;
  int wires = 0;
  double minw_s = 0;
  int route_w = 0;
  double route_s = 0;
  int route_iters = 0;

  double moves_per_s() const { return place_s > 0 ? moves / place_s : 0; }
  double e2e_s() const { return place_s + route_s; }
};

struct CircuitResult {
  std::string name;
  int blocks = 0;
  int nets = 0;
  ModeResult inc;
  ModeResult orc;
};

ModeResult run_mode(const amdrel::pack::PackedNetlist& packed,
                    const amdrel::arch::ArchSpec& spec, bool incremental,
                    int threads, int route_w_override) {
  using namespace amdrel;
  ModeResult r;

  place::Placement p(packed, spec);
  place::Placement::AnnealOptions ao;
  ao.incremental = incremental;
  auto t0 = Clock::now();
  auto stats = p.anneal(ao);
  r.place_s = secs_since(t0);
  r.moves = stats.moves;
  r.bbox_cost = stats.final_cost;

  route::RouteOptions ro;
  ro.incremental = incremental;
  ro.probe_threads = threads;
  route::RouteResult rr;
  t0 = Clock::now();
  r.min_w = route::minimum_channel_width(p, spec, &rr, ro);
  r.minw_s = secs_since(t0);
  r.wires = rr.total_wire_nodes;

  // Routed flow: one routing pass at a relaxed width (minW+2 unless the
  // caller pins a width so both modes use the same graph).
  r.route_w = route_w_override > 0 ? route_w_override : r.min_w + 2;
  route::RrGraph graph(p, spec, r.route_w);
  t0 = Clock::now();
  auto fixed = route::route_all(graph, p, ro);
  r.route_s = secs_since(t0);
  r.route_iters = fixed.iterations;
  route::verify_routing(graph, p, fixed);  // throws if illegal
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amdrel;
  bool run_inc = true, run_orc = true;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, " [--incremental] [--oracle]",
      [&](int, char** av, int* i) {
        if (std::strcmp(av[*i], "--incremental") == 0) {
          run_orc = false;
          return true;
        }
        if (std::strcmp(av[*i], "--oracle") == 0) {
          run_inc = false;
          return true;
        }
        return false;
      });
  if (!run_inc && !run_orc) run_inc = run_orc = true;
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);
  const bool json = args.json;
  const int threads = args.threads;

  auto suite = bench_gen::mcnc_like_suite();
  suite.resize(4);  // the flow_qor subset

  std::vector<CircuitResult> results;
  bool widths_match = true;
  double tot[2][3] = {};  // [inc|orc][place, route, minw]
  for (const auto& bspec : suite) {
    auto net = synth::map_to_luts(bench_gen::generate(bspec),
                                  synth::LutMapOptions{4, 8});
    arch::ArchSpec spec;
    pack::PackedNetlist packed(net, spec);

    CircuitResult c;
    c.name = bspec.name;
    if (run_inc) c.inc = run_mode(packed, spec, true, threads, 0);
    if (run_orc) {
      // Pin the oracle's fixed-width pass to the incremental run's width
      // so the two route the same graph (they agree on min-W anyway).
      c.orc = run_mode(packed, spec, false, threads,
                       run_inc ? c.inc.route_w : 0);
    }
    {
      place::Placement p(packed, spec);
      c.blocks = static_cast<int>(p.blocks().size());
      c.nets = static_cast<int>(p.nets().size());
    }
    if (run_inc && run_orc && c.inc.min_w != c.orc.min_w) {
      widths_match = false;
    }
    tot[0][0] += c.inc.place_s;
    tot[0][1] += c.inc.route_s;
    tot[0][2] += c.inc.minw_s;
    tot[1][0] += c.orc.place_s;
    tot[1][1] += c.orc.route_s;
    tot[1][2] += c.orc.minw_s;
    results.push_back(std::move(c));
  }

  const bool both = run_inc && run_orc;
  if (json) {
    bench::JsonWriter w;
    w.begin_object();
    w.field("bench", "cad_pnr");
    w.field("suite", "mcnc_like_suite[0:4]");
    w.field("threads", threads);
    w.field("mode", both ? "both" : (run_inc ? "incremental" : "oracle"));
    w.begin_array("circuits");
    for (const CircuitResult& c : results) {
      w.object_in_array();
      w.field("name", c.name);
      w.field("blocks", c.blocks);
      w.field("nets", c.nets);
      auto mode_fields = [&w](const char* prefix, const ModeResult& m) {
        const std::string p(prefix);
        w.field((p + "_place_s").c_str(), m.place_s);
        w.field((p + "_moves_per_s").c_str(), m.moves_per_s());
        w.field((p + "_bbox_cost").c_str(), m.bbox_cost);
        w.field((p + "_min_w").c_str(), m.min_w);
        w.field((p + "_wires").c_str(), m.wires);
        w.field((p + "_minw_s").c_str(), m.minw_s);
        w.field((p + "_route_w").c_str(), m.route_w);
        w.field((p + "_route_s").c_str(), m.route_s);
        w.field((p + "_e2e_s").c_str(), m.e2e_s());
      };
      if (run_inc) mode_fields("inc", c.inc);
      if (run_orc) mode_fields("oracle", c.orc);
      if (both) {
        w.field("widths_match", c.inc.min_w == c.orc.min_w);
        w.field("bbox_dcost_pct",
                100.0 * (c.inc.bbox_cost - c.orc.bbox_cost) / c.orc.bbox_cost);
        w.field("speedup_place", c.orc.place_s / c.inc.place_s);
        w.field("speedup_route", c.orc.route_s / c.inc.route_s);
        w.field("speedup_minw", c.orc.minw_s / c.inc.minw_s);
        w.field("speedup_e2e", c.orc.e2e_s() / c.inc.e2e_s());
      }
      w.end_object();
    }
    w.end_array();
    if (both) {
      w.field("widths_match", widths_match);
      w.field("speedup_place", tot[1][0] / tot[0][0]);
      w.field("speedup_route", tot[1][1] / tot[0][1]);
      w.field("speedup_minw", tot[1][2] / tot[0][2]);
      w.field("speedup_e2e",
              (tot[1][0] + tot[1][1]) / (tot[0][0] + tot[0][1]));
      w.field("speedup_full",
              (tot[1][0] + tot[1][1] + tot[1][2]) /
                  (tot[0][0] + tot[0][1] + tot[0][2]));
    }
    w.end_object();
    w.finish();
    return 0;
  }

  std::printf("CAD P&R kernels: incremental vs oracle (mcnc_like_suite[0:4])\n\n");
  Table table({"circuit", "blocks", "mode", "place s", "Mmoves/s", "bbox",
               "minW", "wires", "minW s", "route W", "route s", "e2e s"});
  auto add_mode = [&table](const CircuitResult& c, const char* label,
                           const ModeResult& m) {
    table.add_row({c.name, std::to_string(c.blocks), label,
                   strprintf("%.3f", m.place_s),
                   strprintf("%.2f", m.moves_per_s() / 1e6),
                   strprintf("%.1f", m.bbox_cost), std::to_string(m.min_w),
                   std::to_string(m.wires), strprintf("%.3f", m.minw_s),
                   std::to_string(m.route_w), strprintf("%.3f", m.route_s),
                   strprintf("%.3f", m.e2e_s())});
  };
  for (const CircuitResult& c : results) {
    if (run_inc) add_mode(c, "inc", c.inc);
    if (run_orc) add_mode(c, "oracle", c.orc);
  }
  std::printf("%s\n", table.to_string().c_str());
  if (both) {
    std::printf(
        "suite speedups (oracle/incremental): place %.2fx, route %.2fx, "
        "min-W search %.2fx, e2e (place+route) %.2fx, full flow %.2fx\n",
        tot[1][0] / tot[0][0], tot[1][1] / tot[0][1], tot[1][2] / tot[0][2],
        (tot[1][0] + tot[1][1]) / (tot[0][0] + tot[0][1]),
        (tot[1][0] + tot[1][1] + tot[1][2]) /
            (tot[0][0] + tot[0][1] + tot[0][2]));
    std::printf("min channel widths %s\n",
                widths_match ? "identical across modes"
                             : "DIFFER across modes (QoR regression)");
  }
  return widths_match ? 0 : 1;
}

// RR-graph scale benchmark: the tile-pattern deduplicated representation
// against the dense per-node oracle, plus a giant-fabric tier that places,
// routes and streams a bitstream for a >=100k-LUT circuit in fixed memory.
//
//   --json           machine-readable output (one JSON object on stdout)
//   --reps N         RR-build repetitions per timing sample (default 20;
//                    the small-tier graphs build in microseconds)
//   --giant-gates N  generated gate count for the giant tier (default
//                    210000, ~104k LUTs after mapping; 0 skips the tier)
//   --giant-width W  starting channel width for the giant route (default
//                    72; grown 1.5x until routable, the final width is
//                    reported and gated)
//
// Small tiers run the full min-channel-width search twice — once per
// representation — and the two must agree exactly on width and routed
// wire count (the dedup build is bit-identical by construction; this
// bench is the performance regression gate on top of that equivalence).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "obs/obs.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TierResult {
  std::string name;
  int blocks = 0;
  int min_w = -1;            ///< dedup min channel width
  int min_w_dense = -1;      ///< dense oracle min channel width
  int wires = 0;
  int wires_dense = 0;
  int rr_nodes = 0;
  long long rr_edges = 0;
  int patterns = 0;
  double dedup_build_s = 0;  ///< per-build, averaged over --reps
  double dense_build_s = 0;
  long long dedup_bytes = 0;
  long long dense_bytes = 0;

  bool match() const {
    return min_w == min_w_dense && wires == wires_dense;
  }
  double build_speedup() const {
    return dedup_build_s > 0 ? dense_build_s / dedup_build_s : 0;
  }
  double mem_ratio() const {
    return dedup_bytes > 0 ? static_cast<double>(dense_bytes) / dedup_bytes
                           : 0;
  }
};

struct GiantResult {
  int gates = 0;
  int luts = 0;
  int clusters = 0;
  int nx = 0, ny = 0;
  int width = 0;
  int rr_nodes = 0;
  long long rr_edges = 0;
  int patterns = 0;
  long long rr_bytes = 0;
  double rr_build_s = 0;
  double place_s = 0;
  double route_s = 0;
  double bitgen_s = 0;
  int wires = 0;
  int route_iters = 0;
  long long bitstream_bytes = 0;
  std::string hash;          ///< FNV-1a of the streamed bitstream
};

TierResult run_tier(const amdrel::bench_gen::BenchSpec& bspec, int reps) {
  using namespace amdrel;
  auto net = synth::map_to_luts(bench_gen::generate(bspec),
                                synth::LutMapOptions{4, 8});
  arch::ArchSpec spec;
  pack::PackedNetlist packed(net, spec);
  place::Placement p(packed, spec);
  place::Placement::AnnealOptions ao;
  p.anneal(ao);

  TierResult r;
  r.name = bspec.name;
  r.blocks = static_cast<int>(p.blocks().size());

  // Min-W search per representation: the searches must agree exactly.
  route::RouteOptions ro;
  ro.rr.dedup = true;
  route::RouteResult rr_dd, rr_dense;
  r.min_w = route::minimum_channel_width(p, spec, &rr_dd, ro);
  r.wires = rr_dd.total_wire_nodes;
  ro.rr.dedup = false;
  r.min_w_dense = route::minimum_channel_width(p, spec, &rr_dense, ro);
  r.wires_dense = rr_dense.total_wire_nodes;

  // Build timing at the relaxed width minW+2 (the flow's routing width).
  const int w = r.min_w + 2;
  auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    route::RrGraph g(p, spec, w, route::RrOptions{true});
    r.rr_nodes = g.num_nodes();
    r.rr_edges = g.num_edges();
    r.patterns = g.unique_patterns();
    r.dedup_bytes = g.bytes_est();
  }
  r.dedup_build_s = secs_since(t0) / reps;
  t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    route::RrGraph g(p, spec, w, route::RrOptions{false});
    r.dense_bytes = g.bytes_est();
  }
  r.dense_build_s = secs_since(t0) / reps;
  return r;
}

// Locality-preserving order of the CLB locations: snake over BxB tile
// blocks, then snake within each block, flipping direction on odd rows at
// both levels so consecutive curve positions are always adjacent tiles.
// Distance d along the curve maps to Manhattan distance ~sqrt(d), so a
// cluster order with short-range affinity becomes a low-wirelength seed.
std::vector<amdrel::place::Loc> blocked_snake(
    std::vector<amdrel::place::Loc> locs, int block) {
  using amdrel::place::Loc;
  auto key = [block](const Loc& l) {
    const int bx = l.x / block, by = l.y / block;
    const int ex = (by & 1) ? (1 << 19) - bx : bx;
    const int iy = l.y % block;
    const int ix =
        ((by & 1) ^ (iy & 1)) ? (1 << 9) - l.x % block : l.x % block;
    return (static_cast<long long>(by) << 40) |
           (static_cast<long long>(ex) << 20) | (iy << 10) | ix;
  };
  std::sort(locs.begin(), locs.end(),
            [&](const Loc& a, const Loc& b) { return key(a) < key(b); });
  return locs;
}

GiantResult run_giant(int gates, int width) {
  using namespace amdrel;
  GiantResult r;
  r.gates = gates;

  bench_gen::BenchSpec bspec;
  bspec.name = "giant";
  bspec.n_inputs = 64;
  bspec.n_outputs = 32;
  bspec.n_gates = gates;
  bspec.n_latches = 0;
  // Bounded-window locality: channel demand must stay flat as the design
  // scales, or no fixed width routes the tier (see BenchSpec::window).
  bspec.locality = 0.99;
  bspec.window = 16;
  bspec.seed = 77;
  auto net = synth::map_to_luts(bench_gen::generate(bspec),
                                synth::LutMapOptions{4, 8});
  r.luts = static_cast<int>(net.gates().size());

  arch::ArchSpec spec;
  pack::PackedNetlist packed(net, spec);
  r.clusters = static_cast<int>(packed.clusters().size());
  place::Placement p(packed, spec);
  r.nx = p.nx();
  r.ny = p.ny();

  // Constructive placement: a full anneal from a random start is both too
  // slow at this scale and unable to rediscover the netlist's sequential
  // locality. Instead, rank clusters by their mean LUT creation index
  // (pack scrambles cluster order; the LUT index is the locality axis the
  // generator built in), lay the ranked clusters along a blocked snake
  // curve, then clean up with a short radius-limited anneal whose low
  // starting temperature preserves the curve's global structure.
  auto t0 = Clock::now();
  {
    const int nc = static_cast<int>(packed.clusters().size());
    std::vector<std::pair<double, int>> ranked(
        static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
      double sum = 0;
      int cnt = 0;
      for (int bi : packed.clusters()[static_cast<std::size_t>(c)].bles) {
        const int lut = packed.bles()[static_cast<std::size_t>(bi)].lut_gate;
        if (lut >= 0) {
          sum += lut;
          ++cnt;
        }
      }
      ranked[static_cast<std::size_t>(c)] = {cnt ? sum / cnt : 0.0, c};
    }
    std::sort(ranked.begin(), ranked.end());
    const auto curve = blocked_snake(p.legal_clb_locs(), 8);
    for (int i = 0; i < nc; ++i) {
      p.set_location(p.block_of_cluster(ranked[static_cast<std::size_t>(i)]
                                            .second),
                     curve[static_cast<std::size_t>(i)]);
    }
    p.validate();
    place::Placement::AnnealOptions ao;
    ao.inner_num = 1.0;
    ao.rlim_max = 4.0;
    p.anneal(ao);
  }
  r.place_s = secs_since(t0);

  // Fixed-width route; grow W until routable so one bad guess does not
  // kill the run (the final width is a gated metric). A stall window
  // keeps a failing width from burning the full iteration budget.
  route::RouteOptions ro;
  ro.stall_window = 8;
  route::RouteResult routed;
  for (int w = width;; w += (w + 1) / 2) {
    t0 = Clock::now();
    route::RrGraph graph(p, spec, w, route::RrOptions{true});
    r.rr_build_s = secs_since(t0);
    r.width = w;
    r.rr_nodes = graph.num_nodes();
    r.rr_edges = graph.num_edges();
    r.patterns = graph.unique_patterns();
    r.rr_bytes = graph.bytes_est();

    t0 = Clock::now();
    routed = route::route_all(graph, p, ro);
    r.route_s = secs_since(t0);
    if (routed.success) {
      r.wires = routed.total_wire_nodes;
      r.route_iters = routed.iterations;

      t0 = Clock::now();
      bitgen::HashSink sink;
      bitgen::stream_bitstream(packed, p, graph, routed, spec, &sink);
      r.bitgen_s = secs_since(t0);
      r.bitstream_bytes = static_cast<long long>(sink.bytes_written());
      r.hash = strprintf("%016llx",
                         static_cast<unsigned long long>(sink.hash()));
      return r;
    }
    AMDREL_CHECK_MSG(w < 512, "giant tier unroutable at any sane width");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amdrel;
  int reps = 20;
  int giant_gates = 210000;
  int giant_width = 72;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, " [--reps N] [--giant-gates N] [--giant-width W]",
      [&](int argc2, char** av, int* i) {
        if (std::strcmp(av[*i], "--reps") == 0 && *i + 1 < argc2) {
          reps = std::max(1, parse_int(av[++*i], "--reps"));
          return true;
        }
        if (std::strcmp(av[*i], "--giant-gates") == 0 && *i + 1 < argc2) {
          giant_gates = parse_int(av[++*i], "--giant-gates");
          return true;
        }
        if (std::strcmp(av[*i], "--giant-width") == 0 && *i + 1 < argc2) {
          giant_width = std::max(4, parse_int(av[++*i], "--giant-width"));
          return true;
        }
        return false;
      });
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  auto suite = bench_gen::mcnc_like_suite();
  suite.resize(4);  // the cad_pnr_bench / flow_qor subset

  std::vector<TierResult> tiers;
  bool all_match = true;
  for (const auto& bspec : suite) {
    tiers.push_back(run_tier(bspec, reps));
    all_match = all_match && tiers.back().match();
  }

  GiantResult giant;
  const bool run_the_giant = giant_gates > 0;
  if (run_the_giant) giant = run_giant(giant_gates, giant_width);
  const long peak_rss = obs::peak_rss_kb();

  if (args.json) {
    bench::JsonWriter w;
    w.begin_object();
    w.field("bench", "rr_scale");
    w.field("reps", reps);
    w.begin_array("circuits");
    for (const TierResult& t : tiers) {
      w.object_in_array();
      w.field("name", t.name);
      w.field("blocks", t.blocks);
      w.field("channel_width", t.min_w);
      w.field("wires", t.wires);
      w.field("widths_match", t.match());
      w.field("rr_nodes", t.rr_nodes);
      w.field("rr_edges", static_cast<double>(t.rr_edges));
      w.field("patterns", t.patterns);
      w.field("dedup_build_s", t.dedup_build_s);
      w.field("dense_build_s", t.dense_build_s);
      w.field("build_speedup", t.build_speedup());
      w.field("dedup_bytes", static_cast<double>(t.dedup_bytes));
      w.field("dense_bytes", static_cast<double>(t.dense_bytes));
      w.field("mem_ratio", t.mem_ratio());
      w.end_object();
    }
    if (run_the_giant) {
      w.object_in_array();
      w.field("name", "giant_100k");
      w.field("gates", giant.gates);
      w.field("luts", giant.luts);
      w.field("clusters", giant.clusters);
      w.field("nx", giant.nx);
      w.field("ny", giant.ny);
      w.field("channel_width", giant.width);
      w.field("wires", giant.wires);
      w.field("rr_nodes", giant.rr_nodes);
      w.field("rr_edges", static_cast<double>(giant.rr_edges));
      w.field("patterns", giant.patterns);
      w.field("rr_bytes", static_cast<double>(giant.rr_bytes));
      w.field("rr_build_s", giant.rr_build_s);
      w.field("place_s", giant.place_s);
      w.field("route_s", giant.route_s);
      w.field("route_iters", giant.route_iters);
      w.field("bitgen_s", giant.bitgen_s);
      w.field("bitstream_bytes", static_cast<double>(giant.bitstream_bytes));
      w.field("bitstream_hash", giant.hash);
      w.field("peak_rss_kb", static_cast<double>(peak_rss));
      w.end_object();
    }
    w.end_array();
    w.field("widths_match", all_match);
    w.field("peak_rss_kb", static_cast<double>(peak_rss));
    w.end_object();
    w.finish();
    return all_match ? 0 : 1;
  }

  std::printf("RR-graph scale: tile-pattern dedup vs dense oracle\n\n");
  Table table({"circuit", "blocks", "minW", "wires", "nodes", "patterns",
               "dedup us", "dense us", "speedup", "mem ratio"});
  for (const TierResult& t : tiers) {
    table.add_row({t.name, std::to_string(t.blocks), std::to_string(t.min_w),
                   std::to_string(t.wires), std::to_string(t.rr_nodes),
                   std::to_string(t.patterns),
                   strprintf("%.1f", t.dedup_build_s * 1e6),
                   strprintf("%.1f", t.dense_build_s * 1e6),
                   strprintf("%.1fx", t.build_speedup()),
                   strprintf("%.1fx", t.mem_ratio())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("min channel widths / wires %s across representations\n",
              all_match ? "identical" : "DIFFER (QoR regression)");
  if (run_the_giant) {
    std::printf(
        "\ngiant tier: %d gates -> %d LUTs -> %d CLBs on %dx%d, W=%d\n"
        "  RR: %d nodes, %lld edges, %d patterns, ~%lld KiB\n"
        "  build %.3fs, place %.1fs, route %.1fs (%d iters, %d wires), "
        "bitgen %.2fs\n"
        "  bitstream %lld bytes (fnv1a %s), peak RSS %ld MiB\n",
        giant.gates, giant.luts, giant.clusters, giant.nx, giant.ny,
        giant.width, giant.rr_nodes, giant.rr_edges, giant.patterns,
        giant.rr_bytes / 1024, giant.rr_build_s, giant.place_s,
        giant.route_s, giant.route_iters, giant.wires, giant.bitgen_s,
        giant.bitstream_bytes, giant.hash.c_str(), peak_rss / 1024);
  }
  return all_match ? 0 : 1;
}

// Reproduces Fig. 9: E·D·A vs switch width with minimum-width wires at
// DOUBLE spacing (less coupling capacitance → better E·D·A overall).
// Paper: optimum 10× for L=1,2,4; 64× for L=8.

#include "fig_passtransistor_common.hpp"

int main(int argc, char** argv) {
  const auto args = amdrel::bench::parse_bench_args(argc, argv);
  amdrel::bench::run_passtransistor_figure(
      "fig9_passtransistor_minw_doubles",
      "Fig. 9: minimum wire width, double spacing",
      amdrel::process::WireWidth::kMinimum,
      amdrel::process::WireSpacing::kDouble, args);
  if (!args.json) {
    std::printf("\npaper: optimum 10x for L=1,2,4; 64x for L=8; overall "
                "E*D*A improves vs Fig. 8\n");
  }
  return 0;
}

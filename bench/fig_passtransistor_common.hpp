#pragma once
// Shared sweep harness for the paper's Figs 8–10: energy·delay·area
// product vs routing pass-transistor width, for wire lengths 1/2/4/8, at
// one wire width/spacing configuration per figure.
//
// The widths×lengths grid points are independent testbenches, so they run
// on a thread pool (--threads); results land in index-addressed slots, so
// the output is identical for any thread count.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cells/routing_expt.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace amdrel::bench {

inline void run_passtransistor_figure(const char* name, const char* title,
                                      process::WireWidth ww,
                                      process::WireSpacing ws,
                                      const BenchArgs& args) {
  using cells::RoutingExptOptions;
  using cells::run_routing_experiment;

  auto trace_guard = install_trace(args);

  const std::vector<double> widths = {1, 2, 4, 6, 8, 10, 16, 32, 64};
  const std::vector<int> lengths = {1, 2, 4, 8};

  // Normalize each length's series by its W=10 point so the curve shapes
  // (and the optimum position) are directly comparable with the figures.
  std::vector<std::vector<double>> eda(
      lengths.size(), std::vector<double>(widths.size(), 0.0));
  parallel_for(
      lengths.size() * widths.size(),
      [&](std::size_t i) {
        const std::size_t li = i / widths.size();
        const std::size_t wi = i % widths.size();
        RoutingExptOptions opt;
        opt.wire_length = lengths[li];
        opt.switch_width_x = widths[wi];
        opt.wire_width = ww;
        opt.wire_spacing = ws;
        opt.dt = 5e-12;
        opt.solver = args.solver();
        eda[li][wi] = run_routing_experiment(opt).eda;
      },
      static_cast<std::size_t>(args.threads));

  std::vector<double> best_w(lengths.size(), 0.0);
  std::vector<double> w10(lengths.size(), 0.0);
  for (std::size_t li = 0; li < lengths.size(); ++li) {
    double best = 0;
    for (std::size_t wi = 0; wi < widths.size(); ++wi) {
      if (widths[wi] == 10) w10[li] = eda[li][wi];
      if (best == 0 || eda[li][wi] < best) {
        best = eda[li][wi];
        best_w[li] = widths[wi];
      }
    }
  }

  if (args.json) {
    JsonWriter j;
    j.begin_object();
    j.field("bench", name);
    j.begin_array("points");
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      for (std::size_t wi = 0; wi < widths.size(); ++wi) {
        j.object_in_array();
        j.field("length", lengths[li]);
        j.field("width_x", widths[wi]);
        j.field("eda_norm", eda[li][wi] / w10[li]);
        j.end_object();
      }
    }
    j.end_array();
    j.begin_array("optimal_width_x");
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      j.object_in_array();
      j.field("length", lengths[li]);
      j.field("width_x", best_w[li]);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.finish();
    return;
  }

  std::printf("%s\n", title);
  std::printf("E*D*A product vs routing pass-transistor width "
              "(relative to the width=10x value of each length)\n\n");
  std::vector<std::string> header{"W/Wmin"};
  for (int len : lengths) header.push_back("L=" + std::to_string(len));
  Table table(header);
  for (std::size_t wi = 0; wi < widths.size(); ++wi) {
    std::vector<std::string> row{strprintf("%.0f", widths[wi])};
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      row.push_back(strprintf("%.3f", eda[li][wi] / w10[li]));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  for (std::size_t li = 0; li < lengths.size(); ++li) {
    std::printf("optimal width for L=%d: %.0fx\n", lengths[li], best_w[li]);
  }
}

}  // namespace amdrel::bench

#pragma once
// Shared sweep harness for the paper's Figs 8–10: energy·delay·area
// product vs routing pass-transistor width, for wire lengths 1/2/4/8, at
// one wire width/spacing configuration per figure.

#include <cstdio>
#include <vector>

#include "cells/routing_expt.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace amdrel::bench {

inline void run_passtransistor_figure(const char* title,
                                      process::WireWidth ww,
                                      process::WireSpacing ws) {
  using cells::RoutingExptOptions;
  using cells::run_routing_experiment;

  std::printf("%s\n", title);
  std::printf("E*D*A product vs routing pass-transistor width "
              "(relative to the width=10x value of each length)\n\n");

  const std::vector<double> widths = {1, 2, 4, 6, 8, 10, 16, 32, 64};
  const std::vector<int> lengths = {1, 2, 4, 8};

  std::vector<std::string> header{"W/Wmin"};
  for (int len : lengths) header.push_back("L=" + std::to_string(len));
  Table table(header);

  // Normalize each length's series by its W=10 point so the curve shapes
  // (and the optimum position) are directly comparable with the figures.
  std::vector<std::vector<double>> eda(
      lengths.size(), std::vector<double>(widths.size(), 0.0));
  std::vector<double> best_w(lengths.size(), 0.0);
  for (std::size_t li = 0; li < lengths.size(); ++li) {
    double best = 0;
    for (std::size_t wi = 0; wi < widths.size(); ++wi) {
      RoutingExptOptions opt;
      opt.wire_length = lengths[li];
      opt.switch_width_x = widths[wi];
      opt.wire_width = ww;
      opt.wire_spacing = ws;
      opt.dt = 5e-12;
      auto r = run_routing_experiment(opt);
      eda[li][wi] = r.eda;
      if (best == 0 || r.eda < best) {
        best = r.eda;
        best_w[li] = widths[wi];
      }
    }
  }
  for (std::size_t wi = 0; wi < widths.size(); ++wi) {
    std::vector<std::string> row{strprintf("%.0f", widths[wi])};
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      double w10 = 0;
      for (std::size_t k = 0; k < widths.size(); ++k) {
        if (widths[k] == 10) w10 = eda[li][k];
      }
      row.push_back(strprintf("%.3f", eda[li][wi] / w10));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  for (std::size_t li = 0; li < lengths.size(); ++li) {
    std::printf("optimal width for L=%d: %.0fx\n", lengths[li], best_w[li]);
  }
}

}  // namespace amdrel::bench

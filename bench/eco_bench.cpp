// ECO incremental-recompilation benchmark: the 1%-edit workload from the
// issue's acceptance bar. For each synthetic circuit we compile a base
// implementation, apply a ~1% mixed edit (truth-table retunes, rewires,
// added LUTs), then recompile it twice at the SAME channel width — once
// from scratch and once through FlowSession::resume_with_edit — and
// formally prove the ECO bitstream implements the edit.
//
// The headline columns: speedup (scratch wall / eco wall; the issue
// demands >= 10x) and reuse ratio (fraction of LUTs, clusters, block
// locations and routed nets carried over from the base implementation).
// `formally_verified` is the SAT proof of the ECO result against the
// edited netlist — the safety net that makes the reuse trustworthy.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "eco/eco.hpp"
#include "flow/session.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "verify/equiv.hpp"

namespace {

using namespace amdrel;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  if (!args.json) {
    std::printf("ECO incremental recompilation: ~1%% edits, equal W\n\n");
  }

  struct Workload {
    const char* name;
    int gates;
    int latches;
    std::uint64_t seed;
  };
  const std::vector<Workload> workloads = {
      {"eco_small", 600, 16, 101},
      {"eco_medium", 1000, 24, 202},
      {"eco_large", 1600, 32, 303},
      {"eco_xl", 3200, 48, 404},
  };

  Table table({"circuit", "gates", "dirty %", "W", "scratch s", "eco s",
               "speedup", "reuse %", "nets rerouted", "formal"});
  bench::JsonWriter w;
  if (args.json) {
    w.begin_object();
    w.field("bench", "eco_bench");
    w.begin_array("circuits");
  }

  int failures = 0;
  for (const auto& wl : workloads) {
    try {
      bench_gen::BenchSpec spec;
      spec.name = wl.name;
      spec.n_gates = wl.gates;
      spec.n_latches = wl.latches;
      spec.seed = wl.seed;
      const netlist::Network base = bench_gen::generate(spec);

      // ~1% of the gates touched: retunes, rewires and fresh LUTs.
      bench_gen::EditSpec edit;
      edit.flips = wl.gates / 200;
      edit.rewires = wl.gates / 400;
      edit.added_luts = wl.gates / 400;
      edit.seed = wl.seed + 1;
      const netlist::Network edited = bench_gen::perturb(base, edit);

      // Probe the minimum channel width of the base design, then run
      // every compile — base, scratch and ECO — at W* + ~15% headroom:
      // the margin an ECO fabric reserves so edits route in spare
      // capacity (and a fresh anneal of the edited design needs margin
      // too), and the same fabric for all three so the comparison is
      // apples-to-apples.
      // The probe and base compiles are JobSpec-described (source
      // bench_gen): the same job an amdrel_serve client would submit.
      flow::JobSpec probe_job = args.spec;  // shared CLI knobs
      probe_job.label = wl.name;
      probe_job.source = flow::JobSpec::Source::kBenchGen;
      probe_job.bench = spec;
      probe_job.options.verify_mode = flow::VerifyMode::kOff;
      // Invariant lint is a debug barrier, not part of the compile; it is
      // disabled on BOTH sides so the wall-clock comparison measures the
      // flow itself. The SAT proof below is the correctness check here.
      probe_job.options.check_invariants = false;
      probe_job.options.search_min_channel_width = true;
      flow::FlowSession probe(probe_job);
      probe.resume();
      const int min_width = probe.result().channel_width;
      const int channel_width = min_width + std::max(4, min_width * 15 / 100);

      flow::JobSpec base_job = probe_job;
      base_job.options.search_min_channel_width = false;
      base_job.options.arch.channel_width = channel_width;
      flow::FlowSession session(base_job);
      session.resume();

      // From-scratch recompile of the edit at the same channel width —
      // the denominator. (The edited network is in-memory only, so it
      // uses the network entry point with the same options.)
      const auto t_scratch = std::chrono::steady_clock::now();
      flow::FlowSession scratch_session(edited, base_job.options);
      scratch_session.resume();
      const flow::FlowResult scratch = scratch_session.take_result();
      const double scratch_s = seconds_since(t_scratch);

      eco::EcoStats stats;
      const auto t_eco = std::chrono::steady_clock::now();
      session.resume_with_edit(edited, &stats);
      const double eco_s = seconds_since(t_eco);
      const double speedup = eco_s > 0.0 ? scratch_s / eco_s : 0.0;

      // The safety net: SAT-prove the ECO bitstream against the edit (and
      // thereby against the scratch compile, which implements the same
      // netlist). The packing/placement-derived register map pins the
      // FF correspondence — unguided signature matching gets ambiguous
      // once a design has a few dozen latches.
      const netlist::Network eco_fabric =
          bitgen::decode_to_network(session.result().bitstream);
      verify::EquivOptions vopt;
      vopt.register_map = flow::fabric_register_map(session.result());
      const verify::EquivResult eq =
          verify::prove_equivalence(edited, eco_fabric, vopt);
      const bool formally_verified = eq.equivalent();
      if (!formally_verified) {
        ++failures;
        std::fprintf(stderr, "%s: NOT equivalent: %s (route_seeded=%d "
                     "incremental_map=%d fallbacks=%d)\n",
                     wl.name, eq.message.c_str(), stats.route_seeded ? 1 : 0,
                     stats.incremental_map ? 1 : 0, stats.fallbacks);
      }
      (void)scratch;

      if (args.json) {
        w.object_in_array();
        w.field("name", wl.name);
        w.field("gates", static_cast<int>(base.gates().size()));
        w.field("dirty_pct", stats.entry_diff.dirty_pct());
        w.field("channel_width", stats.channel_width);
        w.field("scratch_s", scratch_s);
        w.field("eco_s", eco_s);
        w.field("speedup", speedup);
        w.field("reuse_ratio", stats.reuse_ratio());
        w.field("incremental_map", stats.incremental_map);
        w.field("luts_total", stats.luts_total);
        w.field("luts_reused", stats.luts_reused);
        w.field("clusters_total", stats.clusters_total);
        w.field("clusters_reused", stats.clusters_reused);
        w.field("blocks_total", stats.blocks_total);
        w.field("blocks_matched", stats.blocks_matched);
        w.field("nets_total", stats.nets_total);
        w.field("nets_seeded", stats.nets_seeded);
        w.field("nets_rerouted", stats.nets_rerouted);
        w.field("fallbacks", stats.fallbacks);
        w.field("formally_verified", formally_verified);
        w.end_object();
      } else {
        table.add_row({wl.name,
                       std::to_string(static_cast<int>(base.gates().size())),
                       strprintf("%.2f", 100.0 * stats.entry_diff.dirty_pct()),
                       std::to_string(stats.channel_width),
                       strprintf("%.3f", scratch_s), strprintf("%.3f", eco_s),
                       strprintf("%.1fx", speedup),
                       strprintf("%.1f", 100.0 * stats.reuse_ratio()),
                       strprintf("%d/%d", stats.nets_rerouted,
                                 stats.nets_total),
                       formally_verified ? "yes" : "NO"});
        std::printf("  %-10s ok\n", wl.name);
      }
    } catch (const std::exception& e) {
      ++failures;
      if (args.json) {
        w.object_in_array();
        w.field("name", wl.name);
        w.field("formally_verified", false);
        w.field("error", e.what());
        w.end_object();
      } else {
        std::printf("  %-10s FAILED: %s\n", wl.name, e.what());
      }
    }
  }

  if (args.json) {
    w.end_array();
    w.field("failures", failures);
    w.end_object();
    w.finish();
    return failures == 0 ? 0 : 1;
  }

  std::printf("\n%s", table.to_string().c_str());
  std::printf("\n'speedup' = from-scratch wall / eco wall at equal channel "
              "width\n'formal'  = ECO bitstream SAT-proven equivalent to the "
              "edited netlist\n");
  return failures == 0 ? 0 : 1;
}

// Reproduces Table 3: energy per clock cycle of the CLB local clock
// network (root stage + local wire + 5 BLE gating stages + FF clock pins)
// for the single clock vs the CLB-level gated clock, under 0 / 1 / 5
// active flip-flops.
//
// Paper values: all OFF 23.1→3.9 fJ (−83%); one ON 24.1→32.1 (+33%);
// all ON 27.8→35.8 (+29%); conclusion: CLB gating pays off when
// P(all FFs idle) > 1/3.

#include <cstdio>

#include "bench_common.hpp"
#include "cells/characterize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amdrel;
  using namespace amdrel::cells;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  DetffBenchOptions opt;
  opt.solver = args.solver();
  opt.n_threads = args.threads;
  auto rows = measure_clb_clock_gating(opt);

  double save_off = 0, cost_on = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double delta =
        100.0 * (rows[i].gated_clock_j / rows[i].single_clock_j - 1.0);
    if (i == 0) save_off = delta;
    if (i == 2) cost_on = delta;
  }
  // Break-even idle probability p solving p*saving = (1-p)*overhead.
  const double p = cost_on / (cost_on - save_off);

  if (args.json) {
    bench::JsonWriter j;
    j.begin_object();
    j.field("bench", "table3_clb_clockgate");
    j.begin_array("conditions");
    for (const auto& r : rows) {
      j.object_in_array();
      j.field("n_ffs_on", r.n_ffs_on);
      j.field("single_clock_fj", r.single_clock_j * 1e15);
      j.field("gated_clock_fj", r.gated_clock_j * 1e15);
      j.field("delta_pct",
              100.0 * (r.gated_clock_j / r.single_clock_j - 1.0));
      j.end_object();
    }
    j.end_array();
    j.field("break_even_p_idle", p);
    j.end_object();
    j.finish();
    return 0;
  }

  std::printf("Table 3: CLB-level clock gating energy per cycle (5 BLEs)\n\n");
  Table table({"Condition", "Single Clock (fJ)", "Gated Clock (fJ)",
               "delta"});
  const char* names[] = {"all F/Fs OFF", "one F/F ON", "all F/Fs ON"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    double delta = 100.0 * (r.gated_clock_j / r.single_clock_j - 1.0);
    table.add_row({names[i], strprintf("%.2f", r.single_clock_j * 1e15),
                   strprintf("%.2f", r.gated_clock_j * 1e15),
                   strprintf("%+.0f%%", delta)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: -83%% all-off, +33%% one-on, +29%% all-on\n");
  std::printf("break-even P(all FFs OFF) = %.2f (paper: 1/3)\n", p);
  return 0;
}

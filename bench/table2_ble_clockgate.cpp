// Reproduces Table 2: energy per clock cycle of one BLE's clock path
// (driver chain + final stage + DETFF) for a plain clock vs the gated
// clock (NAND + inverter), with the enable high and low.
//
// Paper values: single 40.76 fJ; gated EN=1 43.44 fJ (+6.2%); gated EN=0
// 9.31 fJ (−77%). The shape to match: small overhead when enabled, large
// saving when disabled.

#include <cstdio>

#include "bench_common.hpp"
#include "cells/characterize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amdrel;
  using namespace amdrel::cells;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  DetffBenchOptions opt;
  opt.solver = args.solver();
  opt.n_threads = args.threads;
  auto e = measure_ble_clock_gating(opt);
  const double d_en = 100.0 * (e.gated_enabled_j / e.single_clock_j - 1.0);
  const double d_dis = 100.0 * (e.gated_disabled_j / e.single_clock_j - 1.0);

  if (args.json) {
    bench::JsonWriter j;
    j.begin_object();
    j.field("bench", "table2_ble_clockgate");
    j.field("single_clock_fj", e.single_clock_j * 1e15);
    j.field("gated_enabled_fj", e.gated_enabled_j * 1e15);
    j.field("gated_disabled_fj", e.gated_disabled_j * 1e15);
    j.field("enabled_delta_pct", d_en);
    j.field("disabled_delta_pct", d_dis);
    j.end_object();
    j.finish();
    return 0;
  }

  std::printf("Table 2: BLE-level clock gating energy per cycle\n\n");
  Table table({"Configuration", "Energy (fJ)", "vs single clock"});
  table.add_row({"Single clock", strprintf("%.2f", e.single_clock_j * 1e15),
                 "-"});
  table.add_row({"Gated clock, CLK_ENABLE=1",
                 strprintf("%.2f", e.gated_enabled_j * 1e15),
                 strprintf("%+.1f%%", d_en)});
  table.add_row({"Gated clock, CLK_ENABLE=0",
                 strprintf("%.2f", e.gated_disabled_j * 1e15),
                 strprintf("%+.1f%%", d_dis)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: +6.2%% when enabled, -77%% when disabled\n");
  return 0;
}

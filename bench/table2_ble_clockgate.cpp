// Reproduces Table 2: energy per clock cycle of one BLE's clock path
// (driver chain + final stage + DETFF) for a plain clock vs the gated
// clock (NAND + inverter), with the enable high and low.
//
// Paper values: single 40.76 fJ; gated EN=1 43.44 fJ (+6.2%); gated EN=0
// 9.31 fJ (−77%). The shape to match: small overhead when enabled, large
// saving when disabled.

#include <cstdio>

#include "cells/characterize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  using namespace amdrel::cells;
  std::printf("Table 2: BLE-level clock gating energy per cycle\n\n");

  auto e = measure_ble_clock_gating();
  Table table({"Configuration", "Energy (fJ)", "vs single clock"});
  table.add_row({"Single clock", strprintf("%.2f", e.single_clock_j * 1e15),
                 "-"});
  table.add_row({"Gated clock, CLK_ENABLE=1",
                 strprintf("%.2f", e.gated_enabled_j * 1e15),
                 strprintf("%+.1f%%", 100.0 * (e.gated_enabled_j /
                                               e.single_clock_j - 1.0))});
  table.add_row({"Gated clock, CLK_ENABLE=0",
                 strprintf("%.2f", e.gated_disabled_j * 1e15),
                 strprintf("%+.1f%%", 100.0 * (e.gated_disabled_j /
                                               e.single_clock_j - 1.0))});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper: +6.2%% when enabled, -77%% when disabled\n");
  return 0;
}

// Reproduces Table 1: energy consumption, worst-case delay and
// energy-delay product of the five DETFF candidates, simulated at
// transistor level in the 0.18 µm substitute process.
//
// Paper conclusions to match (absolute fJ/ps differ, see EXPERIMENTS.md):
//   * Llopis 1 has the lowest total energy (and is selected for the BLE);
//   * Chung 2 has the lowest energy-delay product.

#include <cstdio>

#include "cells/characterize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  using namespace amdrel::cells;
  std::printf("Table 1: energy, delay and E*D of DET flip-flops "
              "(level-1 0.18um simulation)\n\n");

  auto rows = characterize_all_detffs();
  Table table({"Cell", "Total Energy (fJ)", "Delay (ps)",
               "Energy*Delay (fJ*ps)", "transistors", "functional"});
  const DetffMetrics* best_e = nullptr;
  const DetffMetrics* best_edp = nullptr;
  for (const auto& m : rows) {
    if (best_e == nullptr || m.energy_j < best_e->energy_j) best_e = &m;
    if (best_edp == nullptr || m.edp < best_edp->edp) best_edp = &m;
    table.add_row({detff_name(m.kind), strprintf("%.1f", m.energy_j * 1e15),
                   strprintf("%.1f", m.delay_s * 1e12),
                   strprintf("%.0f", m.edp * 1e27),
                   std::to_string(m.transistors), m.functional ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("lowest energy       : %s (paper: Llopis 1)\n",
              detff_name(best_e->kind));
  std::printf("lowest energy-delay : %s (paper: Chung 2)\n",
              detff_name(best_edp->kind));
  std::printf("selected for the BLE: Llopis 1 (lowest energy, simplest "
              "structure / smallest area)\n");
  return 0;
}

// Reproduces Table 1: energy consumption, worst-case delay and
// energy-delay product of the five DETFF candidates, simulated at
// transistor level in the 0.18 µm substitute process.
//
// Paper conclusions to match (absolute fJ/ps differ, see EXPERIMENTS.md):
//   * Llopis 1 has the lowest total energy (and is selected for the BLE);
//   * Chung 2 has the lowest energy-delay product.

#include <cstdio>

#include "bench_common.hpp"
#include "cells/characterize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace amdrel;
  using namespace amdrel::cells;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  auto trace_guard = bench::install_trace(args);
  bench::ScopedMetricsFile metrics_guard(args);

  DetffBenchOptions opt;
  opt.solver = args.solver();
  opt.n_threads = args.threads;
  auto rows = characterize_all_detffs(opt);

  const DetffMetrics* best_e = nullptr;
  const DetffMetrics* best_edp = nullptr;
  for (const auto& m : rows) {
    if (best_e == nullptr || m.energy_j < best_e->energy_j) best_e = &m;
    if (best_edp == nullptr || m.edp < best_edp->edp) best_edp = &m;
  }

  if (args.json) {
    bench::JsonWriter j;
    j.begin_object();
    j.field("bench", "table1_detff");
    j.begin_array("cells");
    for (const auto& m : rows) {
      j.object_in_array();
      j.field("cell", detff_name(m.kind));
      j.field("energy_fj", m.energy_j * 1e15);
      j.field("delay_ps", m.delay_s * 1e12);
      j.field("edp_fj_ps", m.edp * 1e27);
      j.field("transistors", m.transistors);
      j.field("functional", m.functional);
      j.end_object();
    }
    j.end_array();
    j.field("lowest_energy", detff_name(best_e->kind));
    j.field("lowest_edp", detff_name(best_edp->kind));
    j.end_object();
    j.finish();
    return 0;
  }

  std::printf("Table 1: energy, delay and E*D of DET flip-flops "
              "(level-1 0.18um simulation)\n\n");
  Table table({"Cell", "Total Energy (fJ)", "Delay (ps)",
               "Energy*Delay (fJ*ps)", "transistors", "functional"});
  for (const auto& m : rows) {
    table.add_row({detff_name(m.kind), strprintf("%.1f", m.energy_j * 1e15),
                   strprintf("%.1f", m.delay_s * 1e12),
                   strprintf("%.0f", m.edp * 1e27),
                   std::to_string(m.transistors), m.functional ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("lowest energy       : %s (paper: Llopis 1)\n",
              detff_name(best_e->kind));
  std::printf("lowest energy-delay : %s (paper: Chung 2)\n",
              detff_name(best_edp->kind));
  std::printf("selected for the BLE: Llopis 1 (lowest energy, simplest "
              "structure / smallest area)\n");
  return 0;
}

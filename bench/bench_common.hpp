#pragma once
// Shared command-line handling for the paper-table/figure bench drivers.
//
// Every driver accepts:
//   --json        machine-readable output (one JSON object on stdout)
//                 instead of the human-readable table
//   --threads N   worker threads for the independent testbench runs
//                 (0 = hardware concurrency; default)
//   --dense       use the dense MNA oracle instead of the sparse solver
//                 (slow; for cross-checking the sparse backend)
//   --trace FILE  write the obs trace (JSON-lines, one event per line) to
//                 FILE; see DESIGN.md §8 for the event schema
//   --progress    human-readable trace spans on stderr while running
//   --metrics FILE  write the metrics-registry snapshot (JSON; DESIGN.md
//                 §8) to FILE when the bench exits
//
// Drivers with extra flags pass an `extra` callback to parse_bench_args;
// it sees every argument the shared parser does not recognise and returns
// whether it consumed it (advancing *i for flags that take a value).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace amdrel::bench {

struct BenchArgs {
  bool json = false;
  bool dense = false;
  int threads = 0;        ///< 0 = hardware concurrency
  std::string trace;      ///< --trace FILE (empty = no JSONL trace)
  std::string metrics;    ///< --metrics FILE (empty = no snapshot)
  bool progress = false;  ///< --progress: TextSink on stderr

  spice::MnaSolver solver() const {
    return dense ? spice::MnaSolver::kDense : spice::MnaSolver::kSparse;
  }
};

/// Callback for driver-specific flags: examine argv[*i] (and following
/// values), return true after consuming it. `*i` points at the unrecognised
/// argument; advance it past any value the flag takes.
using ExtraFlagFn = std::function<bool(int argc, char** argv, int* i)>;

inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const char* extra_usage = "",
                                  const ExtraFlagFn& extra = {}) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(argv[i], "--dense") == 0) {
      args.dense = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      try {
        args.threads = parse_int(argv[++i], "--threads");
      } catch (const Error& e) {
        std::fprintf(stderr, "%s: error: %s\n", argv[0], e.what());
        std::exit(2);
      }
      if (args.threads < 0) args.threads = 0;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      args.metrics = argv[++i];
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress = true;
    } else if (extra && extra(argc, argv, &i)) {
      // consumed by the driver
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--dense] [--threads N] "
                   "[--trace FILE] [--metrics FILE] [--progress]%s\n",
                   argv[0], extra_usage);
      std::exit(2);
    }
  }
  return args;
}

/// Attaches the trace sink requested by --trace / --progress for the
/// guard's lifetime; a no-op guard when neither flag was given. --trace
/// wins when both are present (one sink per process).
inline obs::ScopedSink install_trace(const BenchArgs& args) {
  if (!args.trace.empty()) {
    return obs::ScopedSink(std::make_unique<obs::JsonlSink>(args.trace));
  }
  if (args.progress) {
    return obs::ScopedSink(std::make_unique<obs::TextSink>());
  }
  return obs::ScopedSink();
}

/// Writes the metrics-registry snapshot requested by --metrics when the
/// guard leaves scope (normal or error exit); no-op when the flag was not
/// given. Declare it right after install_trace in main().
struct ScopedMetricsFile {
  std::string path;
  explicit ScopedMetricsFile(const BenchArgs& args) : path(args.metrics) {}
  ~ScopedMetricsFile() {
    if (path.empty()) return;
    try {
      obs::write_metrics_file(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }
};

/// Minimal JSON writer for the benches' flat records: objects, arrays,
/// string/number/bool fields. Emits to stdout; no escaping beyond what the
/// fixed key/label vocabulary of the drivers needs.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const char* key) { item(); std::printf("\"%s\":", key); open('['); }
  void end_array() { close(']'); }
  void object_in_array() { item(); open('{'); }

  void field(const char* key, const char* value) {
    item();
    std::printf("\"%s\":\"%s\"", key, value);
  }
  void field(const char* key, const std::string& value) {
    field(key, value.c_str());
  }
  void field(const char* key, double value) {
    item();
    std::printf("\"%s\":%.9g", key, value);
  }
  void field(const char* key, int value) {
    item();
    std::printf("\"%s\":%d", key, value);
  }
  void field(const char* key, bool value) {
    item();
    std::printf("\"%s\":%s", key, value ? "true" : "false");
  }
  void finish() { std::printf("\n"); }

 private:
  void open(char c) {
    std::printf("%c", c);
    first_ = true;
  }
  void close(char c) {
    std::printf("%c", c);
    first_ = false;
  }
  void item() {
    if (!first_) std::printf(",");
    first_ = false;
  }
  bool first_ = true;
};

}  // namespace amdrel::bench

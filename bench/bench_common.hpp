#pragma once
// Shared command-line handling for the paper-table/figure bench drivers,
// layered on flow::parse_job_spec (flow/jobspec.hpp) so every binary in
// the repo strips the same flags with the same spellings. The flow layer
// handles:
//   --trace FILE --progress --metrics FILE --threads N --dense
//   --rr-dedup --rr-dense --verify MODE --seed N
//   --priority low|normal|high --until STAGE
// and this layer adds the bench-only --json. Drivers with extra flags
// pass an `extra` callback to parse_bench_args; it sees every argument
// the shared parsers do not recognise and returns whether it consumed it
// (advancing *i for flags that take a value).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "flow/jobspec.hpp"
#include "obs/obs.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace amdrel::bench {

struct BenchArgs {
  bool json = false;
  /// Shared job knobs (--seed/--verify/--rr-dedup/--until/--priority):
  /// flow benches use spec.options as their base FlowOptions, so a QoR
  /// run can be re-seeded or switched to the dense RR oracle without
  /// per-bench flag code.
  flow::JobSpec spec;
  /// Process runtime (--trace/--metrics/--progress/--threads/--dense).
  flow::JobRuntime runtime;
  int threads = 0;  ///< mirror of runtime.threads (0 = hw concurrency)
  bool verify_given = false;  ///< --verify was passed explicitly

  spice::MnaSolver solver() const {
    return runtime.dense_mna ? spice::MnaSolver::kDense
                             : spice::MnaSolver::kSparse;
  }
};

/// Callback for driver-specific flags: examine argv[*i] (and following
/// values), return true after consuming it. `*i` points at the unrecognised
/// argument; advance it past any value the flag takes.
using ExtraFlagFn = std::function<bool(int argc, char** argv, int* i)>;

inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const char* extra_usage = "",
                                  const ExtraFlagFn& extra = {}) {
  BenchArgs args;
  try {
    flow::JobSpecCli cli = flow::parse_job_spec(&argc, argv);
    args.spec = std::move(cli.spec);
    args.runtime = std::move(cli.runtime);
    args.verify_given = cli.verify_given;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: error: %s\n", argv[0], e.what());
    std::exit(2);
  }
  args.threads = args.runtime.threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (extra && extra(argc, argv, &i)) {
      // consumed by the driver
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--dense] [--threads N] "
                   "[--trace FILE] [--metrics FILE] [--progress] "
                   "[--seed N] [--verify MODE] [--rr-dedup|--rr-dense]%s\n",
                   argv[0], extra_usage);
      std::exit(2);
    }
  }
  return args;
}

/// Attaches the trace sink requested by --trace / --progress for the
/// guard's lifetime; a no-op guard when neither flag was given. --trace
/// wins when both are present (one sink per process).
inline obs::ScopedSink install_trace(const BenchArgs& args) {
  return flow::install_runtime_trace(args.runtime);
}

/// Writes the metrics-registry snapshot requested by --metrics when the
/// guard leaves scope (normal or error exit); no-op when the flag was not
/// given. Declare it right after install_trace in main().
struct ScopedMetricsFile : flow::RuntimeMetricsGuard {
  explicit ScopedMetricsFile(const BenchArgs& args)
      : flow::RuntimeMetricsGuard(args.runtime) {}
};

/// Minimal JSON writer for the benches' flat records: objects, arrays,
/// string/number/bool fields. Emits to stdout; no escaping beyond what the
/// fixed key/label vocabulary of the drivers needs.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const char* key) { item(); std::printf("\"%s\":", key); open('['); }
  void end_array() { close(']'); }
  void object_in_array() { item(); open('{'); }

  void field(const char* key, const char* value) {
    item();
    std::printf("\"%s\":\"%s\"", key, value);
  }
  void field(const char* key, const std::string& value) {
    field(key, value.c_str());
  }
  void field(const char* key, double value) {
    item();
    std::printf("\"%s\":%.9g", key, value);
  }
  void field(const char* key, int value) {
    item();
    std::printf("\"%s\":%d", key, value);
  }
  void field(const char* key, bool value) {
    item();
    std::printf("\"%s\":%s", key, value ? "true" : "false");
  }
  void finish() { std::printf("\n"); }

 private:
  void open(char c) {
    std::printf("%c", c);
    first_ = true;
  }
  void close(char c) {
    std::printf("%c", c);
    first_ = false;
  }
  void item() {
    if (!first_) std::printf(",");
    first_ = false;
  }
  bool first_ = true;
};

}  // namespace amdrel::bench

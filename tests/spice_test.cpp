#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace amdrel::spice {
namespace {

const process::Tech018& tech() { return process::default_tech(); }

TEST(Waveform, DcIsFlat) {
  auto w = Waveform::dc(1.8);
  EXPECT_DOUBLE_EQ(w.at(0), 1.8);
  EXPECT_DOUBLE_EQ(w.at(1e-9), 1.8);
}

TEST(Waveform, PulseShape) {
  // 0→1.8, delay 1ns, rise 0.1ns, width 0.8ns, fall 0.1ns, period 2ns.
  auto w = Waveform::pulse(0, 1.8, 1e-9, 0.1e-9, 0.1e-9, 0.8e-9, 2e-9);
  EXPECT_DOUBLE_EQ(w.at(0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(0.99e-9), 0.0);
  EXPECT_NEAR(w.at(1.05e-9), 0.9, 1e-9);  // mid-rise
  EXPECT_DOUBLE_EQ(w.at(1.5e-9), 1.8);    // high
  EXPECT_NEAR(w.at(1.95e-9), 0.9, 1e-9);  // mid-fall
  EXPECT_DOUBLE_EQ(w.at(2.5e-9), 0.0);    // low again
  EXPECT_DOUBLE_EQ(w.at(3.5e-9), 1.8);    // periodic repeat
}

TEST(Waveform, PwlInterpolates) {
  auto w = Waveform::pwl({{0, 0}, {1e-9, 1.8}, {2e-9, 0.9}});
  EXPECT_DOUBLE_EQ(w.at(-1), 0.0);
  EXPECT_NEAR(w.at(0.5e-9), 0.9, 1e-12);
  EXPECT_NEAR(w.at(1.5e-9), 1.35, 1e-12);
  EXPECT_DOUBLE_EQ(w.at(5e-9), 0.9);
}

TEST(Circuit, NodeNamesStable) {
  Circuit c;
  NodeId a = c.node("a");
  NodeId b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.find_node("b"), b);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_TRUE(c.has_node("a"));
  EXPECT_FALSE(c.has_node("zzz"));
  EXPECT_THROW(c.find_node("zzz"), amdrel::Error);
}

TEST(Transient, ResistorDividerDc) {
  Circuit c;
  NodeId vin = c.node("vin");
  NodeId mid = c.node("mid");
  c.add_vsource("v1", vin, kGround, Waveform::dc(1.8));
  c.add_resistor("r1", vin, mid, 1000);
  c.add_resistor("r2", mid, kGround, 3000);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 1e-10;
  opt.dt = 1e-12;
  auto res = sim.run(opt);
  EXPECT_NEAR(res.v(mid, res.time.size() - 1), 1.8 * 0.75, 1e-6);
}

TEST(Transient, RcChargingMatchesClosedForm) {
  // 1kΩ into 100fF: tau = 100ps.
  Circuit c;
  NodeId vin = c.node("vin");
  NodeId out = c.node("out");
  c.add_vsource("v1", vin, kGround,
                Waveform::pwl({{0, 0}, {1e-12, 1.8}}));  // near-step
  c.add_resistor("r1", vin, out, 1000);
  c.add_capacitor("c1", out, kGround, 100e-15);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 0.5e-12;
  auto res = sim.run(opt);
  const double tau = 100e-12;
  for (double frac : {0.5, 1.0, 2.0, 3.0}) {
    const double t = frac * tau;
    // Find nearest sample.
    std::size_t k = static_cast<std::size_t>(t / opt.dt);
    const double expected = 1.8 * (1.0 - std::exp(-(t - 1e-12) / tau));
    EXPECT_NEAR(res.v(out, k), expected, 0.04) << "at t=" << t;
  }
}

TEST(Transient, CapacitorChargeFromSupply) {
  // Energy drawn from an ideal source charging C through R is C·V² (half
  // stored, half dissipated). Checks the energy bookkeeping sign/scale.
  Circuit c;
  NodeId vin = c.node("vin");
  NodeId out = c.node("out");
  // Ramp must be ≪ RC: a slow ramp charges adiabatically and draws less
  // than C·V² (the classic adiabatic-charging effect).
  c.add_vsource("vdd", vin, kGround, Waveform::pwl({{0, 0}, {0.2e-12, 1.8}}));
  c.add_resistor("r1", vin, out, 500);
  c.add_capacitor("c1", out, kGround, 50e-15);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 0.8e-9;
  opt.dt = 0.2e-12;
  auto res = sim.run(opt);
  // Trapezoidal accumulation of v·i keeps the dt-discretization error well
  // under 2% here (the old endpoint rectangle rule needed 5%).
  const double expected = 50e-15 * 1.8 * 1.8;
  EXPECT_NEAR(res.energy_from("vdd"), expected, 0.02 * expected);
  // Charge delivered = C·V.
  EXPECT_NEAR(res.source_charge[0], 50e-15 * 1.8, 0.02 * 50e-15 * 1.8);
}

// Builds a static CMOS inverter with given widths; returns (in, out) nodes.
std::pair<NodeId, NodeId> add_inverter(Circuit& c, NodeId vdd,
                                       const std::string& prefix,
                                       double wn = 0.28, double wp = 0.56) {
  NodeId in = c.node(prefix + ".in");
  NodeId out = c.node(prefix + ".out");
  c.add_mosfet(prefix + ".mp", MosType::kPmos, out, in, vdd, wp);
  c.add_mosfet(prefix + ".mn", MosType::kNmos, out, in, kGround, wn);
  return {in, out};
}

TEST(Transient, InverterInverts) {
  Circuit c;
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  auto [in, out] = add_inverter(c, vdd, "inv");
  c.add_vsource("vin", in, kGround,
                Waveform::pulse(0, 1.8, 1e-9, 50e-12, 50e-12, 2e-9, 5e-9));
  c.add_capacitor("cl", out, kGround, 10e-15);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 2e-12;
  auto res = sim.run(opt);

  // Before the pulse: in=0 → out=Vdd. During pulse: out≈0.
  std::size_t k_low = static_cast<std::size_t>(0.9e-9 / opt.dt);
  std::size_t k_high = static_cast<std::size_t>(2.5e-9 / opt.dt);
  EXPECT_GT(res.v(out, k_low), 1.7);
  EXPECT_LT(res.v(out, k_high), 0.1);
}

TEST(Transient, InverterDelayGrowsWithLoad) {
  auto delay_with_load = [&](double cl) {
    Circuit c;
    NodeId vdd = c.node("vdd");
    c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
    auto [in, out] = add_inverter(c, vdd, "inv");
    c.add_vsource("vin", in, kGround,
                  Waveform::pulse(0, 1.8, 0.5e-9, 20e-12, 20e-12, 2e-9, 4e-9));
    c.add_capacitor("cl", out, kGround, cl);
    TransientSim sim(c);
    TransientOptions opt;
    opt.t_stop = 1.5e-9;
    opt.dt = 1e-12;
    auto res = sim.run(opt);
    // Input mid-rise at 0.51ns; output falls through Vdd/2 afterwards.
    double d = res.delay_from(0.51e-9, out, 0.9, /*rising=*/false);
    EXPECT_GT(d, 0.0);
    return d;
  };
  double d1 = delay_with_load(5e-15);
  double d2 = delay_with_load(20e-15);
  double d3 = delay_with_load(80e-15);
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

TEST(Transient, InverterSwitchingEnergyScalesWithLoad) {
  // Full cycle (out falls then rises): E_vdd ≈ (Cload + Cpar)·Vdd².
  auto energy_with_load = [&](double cl) {
    Circuit c;
    NodeId vdd = c.node("vdd");
    c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
    auto [in, out] = add_inverter(c, vdd, "inv", 0.56, 1.12);
    c.add_vsource("vin", in, kGround,
                  Waveform::pulse(0, 1.8, 1e-9, 50e-12, 50e-12, 4e-9, 10e-9));
    c.add_capacitor("cl", out, kGround, cl);
    TransientSim sim(c);
    TransientOptions opt;
    opt.t_stop = 10e-9;
    opt.dt = 2e-12;
    opt.record = false;
    auto res = sim.run(opt);
    return res.energy_from("vdd");
  };
  double e20 = energy_with_load(20e-15);
  double e40 = energy_with_load(40e-15);
  // Adding 20fF must add ≈ 20fF·Vdd² = 64.8fJ of supply energy.
  double delta = e40 - e20;
  double expected = 20e-15 * 1.8 * 1.8;
  EXPECT_NEAR(delta, expected, 0.15 * expected);
}

TEST(Transient, NmosPassTransistorDegradesHigh) {
  // NMOS pass gate passes a weak '1': output settles near Vdd - Vtn.
  Circuit c;
  NodeId vdd = c.node("vdd");
  NodeId in = c.node("in");
  NodeId out = c.node("out");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  c.add_vsource("vin", in, kGround, Waveform::dc(1.8));
  c.add_mosfet("mpass", MosType::kNmos, in, vdd, out, 2.8);
  c.add_capacitor("cl", out, kGround, 20e-15);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 20e-9;
  opt.dt = 5e-12;
  auto res = sim.run(opt);
  double vfinal = res.v(out, res.time.size() - 1);
  EXPECT_GT(vfinal, 1.0);
  EXPECT_LT(vfinal, 1.45);  // clamped below Vdd - Vtn ≈ 1.35 (+margin)
}

TEST(Transient, RingOscillatorOscillates) {
  // 3-stage ring oscillator: self-sustained oscillation, no input needed.
  Circuit c;
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  NodeId n[3];
  for (int i = 0; i < 3; ++i) n[i] = c.node("n" + std::to_string(i));
  for (int i = 0; i < 3; ++i) {
    NodeId in = n[i];
    NodeId out = n[(i + 1) % 3];
    c.add_mosfet("mp" + std::to_string(i), MosType::kPmos, out, in, vdd, 0.56);
    c.add_mosfet("mn" + std::to_string(i), MosType::kNmos, out, in, kGround,
                 0.28);
    c.add_capacitor("c" + std::to_string(i), out, kGround, 5e-15);
  }
  // Kick-start: small pulse injection on n0 via a large resistor.
  NodeId kick = c.node("kick");
  c.add_vsource("vkick", kick, kGround,
                Waveform::pwl({{0, 0}, {0.1e-9, 1.8}, {0.5e-9, 1.8}, {0.6e-9, 0}}));
  c.add_resistor("rkick", kick, n[0], 10e3);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 20e-9;
  opt.dt = 2e-12;
  auto res = sim.run(opt);
  auto ups = res.crossings(n[1], 0.9, true);
  EXPECT_GE(ups.size(), 3u) << "ring oscillator did not oscillate";
}

TEST(Circuit, AreaAccounting) {
  Circuit c;
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  add_inverter(c, vdd, "i1", 0.28, 0.56);
  EXPECT_DOUBLE_EQ(c.total_transistor_width_um(), 0.84);
  EXPECT_GT(c.device_area_um2(), 0.0);
  // Area metric must be monotone in width.
  EXPECT_GT(tech().transistor_area_um2(2.8), tech().transistor_area_um2(0.28));
}

}  // namespace
}  // namespace amdrel::spice

// Tests for the SAT-based formal equivalence checker (src/verify), its
// lint bridge (EQ0xx rules) and the flow integration: the seeded
// miscompile fixtures — a flipped LUT mask bit, a swapped routing pin
// pair, a flipped bitstream configuration bit — are all missed by the
// random-vector budget the flow uses (4 runs × 48 cycles) and caught by
// the formal miter with a replayable counterexample.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "flow/session.hpp"
#include "lint/equiv_rules.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "synth/lutmap.hpp"
#include "verify/equiv.hpp"
#include "verify/solver.hpp"

namespace amdrel {
namespace {

std::string fixture(const std::string& name) {
  return std::string(AMDREL_FIXTURE_DIR) + "/" + name;
}

// ---------------------------------------------------------------- solver

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes — UNSAT.
void encode_php(verify::Solver* solver, int pigeons, int holes) {
  std::vector<std::vector<verify::Var>> p(
      static_cast<std::size_t>(pigeons));
  for (auto& row : p) {
    for (int h = 0; h < holes; ++h) row.push_back(solver->new_var());
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<verify::Lit> some_hole;
    for (int h = 0; h < holes; ++h) {
      some_hole.push_back(
          verify::mk_lit(p[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(h)],
                         false));
    }
    solver->add_clause(some_hole);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        solver->add_clause(
            {verify::mk_lit(p[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(h)],
                            true),
             verify::mk_lit(p[static_cast<std::size_t>(j)]
                             [static_cast<std::size_t>(h)],
                            true)});
      }
    }
  }
}

TEST(Solver, PigeonholeUnsat) {
  verify::Solver solver;
  encode_php(&solver, 4, 3);
  EXPECT_EQ(solver.solve({}), verify::Solver::Result::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

TEST(Solver, AssumptionsAreIncremental) {
  verify::Solver solver;
  const verify::Var x = solver.new_var();
  const verify::Var y = solver.new_var();
  solver.add_clause({verify::mk_lit(x, true), verify::mk_lit(y, false)});
  ASSERT_EQ(solver.solve({verify::mk_lit(x, false)}),
            verify::Solver::Result::kSat);
  EXPECT_TRUE(solver.model_value(x));
  EXPECT_TRUE(solver.model_value(y));  // x → y

  solver.add_clause({verify::mk_lit(y, true)});  // ¬y
  EXPECT_EQ(solver.solve({verify::mk_lit(x, false)}),
            verify::Solver::Result::kUnsat);
  EXPECT_EQ(solver.solve({}), verify::Solver::Result::kSat);
  EXPECT_FALSE(solver.model_value(x));
}

TEST(Solver, ConflictBudgetGivesUnknown) {
  verify::Solver solver;
  encode_php(&solver, 6, 5);
  solver.set_conflict_budget(5);
  EXPECT_EQ(solver.solve({}), verify::Solver::Result::kUnknown);
  solver.set_conflict_budget(0);
  EXPECT_EQ(solver.solve({}), verify::Solver::Result::kUnsat);
}

// ------------------------------------------------------ prove_equivalence

netlist::Network mapped_copy(const netlist::Network& net) {
  synth::LutMapOptions options;
  synth::LutMapStats stats;
  return synth::map_to_luts(net, options, &stats);
}

TEST(ProveEquivalence, CombinationalAfterMapping) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 200;
  spec.seed = 3;
  const auto net = bench_gen::generate(spec);
  const auto result = verify::prove_equivalence(net, mapped_copy(net));
  EXPECT_EQ(result.status, verify::EquivStatus::kEquivalent)
      << result.message;
  EXPECT_EQ(result.proved_outputs, 8);
  EXPECT_EQ(result.seed, 1u);
}

TEST(ProveEquivalence, ThousandLutDesignWithinBudget) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 16;
  spec.n_outputs = 12;
  spec.n_gates = 1000;
  spec.seed = 9;
  const auto net = bench_gen::generate(spec);
  const auto result = verify::prove_equivalence(net, mapped_copy(net));
  EXPECT_EQ(result.status, verify::EquivStatus::kEquivalent)
      << result.message;
  EXPECT_LT(result.stats.wall_s, 60.0);
}

TEST(ProveEquivalence, SequentialAfterMapping) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 250;
  spec.n_latches = 16;
  spec.seed = 5;
  const auto net = bench_gen::generate(spec);
  const auto result = verify::prove_equivalence(net, mapped_copy(net));
  EXPECT_EQ(result.status, verify::EquivStatus::kEquivalent)
      << result.message;
  EXPECT_EQ(result.matched_registers, 16);
}

TEST(ProveEquivalence, DifferentDesignsRefuted) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 4;
  spec.n_gates = 60;
  spec.seed = 11;
  const auto a = bench_gen::generate(spec);
  spec.seed = 12;
  const auto b = bench_gen::generate(spec);
  const auto result = verify::prove_equivalence(a, b);
  EXPECT_EQ(result.status, verify::EquivStatus::kNotEquivalent);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_FALSE(result.cex->diverging_output.empty());
}

// --------------------------------------------- seeded miscompile fixtures

/// The flow's random-vector budget: what kRandom mode runs per hand-off.
bool random_vectors_miss(const netlist::Network& a,
                         const netlist::Network& b) {
  return netlist::check_equivalence(a, b, 4, 48, 1).equivalent;
}

/// Replays a combinational counterexample through the two-value
/// simulator and checks the claimed divergence is real.
void expect_replayable(const netlist::Network& a, const netlist::Network& b,
                       const verify::Counterexample& cex) {
  netlist::Simulator sim_a(a), sim_b(b);
  for (const auto& [name, value] : cex.inputs) {
    sim_a.set_input_by_name(name, value);
    sim_b.set_input_by_name(name, value);
  }
  sim_a.propagate();
  sim_b.propagate();
  const netlist::SignalId sa = a.find_signal(cex.diverging_output);
  const netlist::SignalId sb = b.find_signal(cex.diverging_output);
  EXPECT_EQ(sim_a.value(sa), cex.value_a);
  EXPECT_EQ(sim_b.value(sb), cex.value_b);
  EXPECT_NE(sim_a.value(sa), sim_b.value(sb));
}

TEST(MiscompileFixtures, FlippedLutMaskBit) {
  const auto good = netlist::read_blif_file(fixture("eq_guard.blif"));
  const auto bad =
      netlist::read_blif_file(fixture("eq_guard_flipped.blif"));

  EXPECT_TRUE(random_vectors_miss(good, bad));

  const auto result = verify::prove_equivalence(good, bad);
  ASSERT_EQ(result.status, verify::EquivStatus::kNotEquivalent)
      << result.message;
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_EQ(result.cex->diverging_output, "y");
  expect_replayable(good, bad, *result.cex);
}

/// 14-wide AND gating an XOR: every output assertion needs ≥14 specific
/// input bits, so any single swapped/flipped configuration bit diverges
/// on a vanishing fraction of random vectors.
const char* kGuardBlif = R"(
.model guard
.inputs i0 i1 i2 i3 i4 i5 i6 i7 i8 i9 i10 i11 i12 i13 s t
.outputs y
.names i0 i1 i2 i3 a0
1111 1
.names i4 i5 i6 i7 a1
1111 1
.names i8 i9 i10 i11 a2
1111 1
.names i12 i13 a3
11 1
.names a0 a1 a2 a3 p
1111 1
.names s t x
01 1
10 1
.names p x y
11 1
.end
)";

struct GuardFlow {
  netlist::Network mapped;
  bitgen::Bitstream bitstream;
};

GuardFlow run_guard_flow() {
  const auto net = netlist::read_blif_string(kGuardBlif);
  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kOff;
  flow::FlowSession session(net, options);
  session.resume();
  flow::FlowResult result = session.take_result();
  return {*result.mapped, result.bitstream};
}

TEST(MiscompileFixtures, SwappedRoutingPins) {
  const GuardFlow flow = run_guard_flow();
  bool found = false;
  for (std::size_t i = 0; i < flow.bitstream.ipin_switches.size() && !found;
       ++i) {
    for (std::size_t j = i + 1; j < flow.bitstream.ipin_switches.size();
         ++j) {
      const auto& si = flow.bitstream.ipin_switches[i];
      const auto& sj = flow.bitstream.ipin_switches[j];
      if (si.x != sj.x || si.y != sj.y || si.pin == sj.pin) continue;
      bitgen::Bitstream corrupt = flow.bitstream;
      std::swap(corrupt.ipin_switches[i].pin, corrupt.ipin_switches[j].pin);
      netlist::Network decoded;
      try {
        decoded = bitgen::decode_to_network(corrupt);
      } catch (const std::exception&) {
        continue;  // swap broke the netlist structurally, not silently
      }
      if (!random_vectors_miss(flow.mapped, decoded)) continue;
      const auto result = verify::prove_equivalence(flow.mapped, decoded);
      if (result.status != verify::EquivStatus::kNotEquivalent) continue;
      ASSERT_TRUE(result.cex.has_value());
      expect_replayable(flow.mapped, decoded, *result.cex);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no pin swap produced a silent, formally-detected miscompile";
}

TEST(MiscompileFixtures, FlippedBitstreamConfigBit) {
  const GuardFlow flow = run_guard_flow();
  // Round-trip through the real .bit bytes first, as a programmer would.
  const auto base =
      bitgen::deserialize(bitgen::serialize(flow.bitstream));
  bool found = false;
  for (std::size_t c = 0; c < base.clbs.size() && !found; ++c) {
    for (std::size_t b = 0; b < base.clbs[c].bles.size() && !found; ++b) {
      if (!base.clbs[c].bles[b].used) continue;
      for (int bit = 0; bit < (1 << base.k); ++bit) {
        if ((base.clbs[c].bles[b].lut_bits >> bit) & 1u) continue;
        bitgen::Bitstream corrupt = base;
        corrupt.clbs[c].bles[b].lut_bits |= 1u << bit;
        netlist::Network decoded;
        try {
          decoded = bitgen::decode_to_network(corrupt);
        } catch (const std::exception&) {
          continue;
        }
        if (!random_vectors_miss(flow.mapped, decoded)) continue;
        const auto result = verify::prove_equivalence(flow.mapped, decoded);
        if (result.status != verify::EquivStatus::kNotEquivalent) continue;
        ASSERT_TRUE(result.cex.has_value());
        expect_replayable(flow.mapped, decoded, *result.cex);
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found)
      << "no config-bit flip produced a silent, formally-detected miscompile";
}

// ------------------------------------------------------------- EQ lint

TEST(EquivLint, InterfaceMismatchFiresEq003) {
  const auto a = netlist::read_blif_string(
      ".model a\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n");
  const auto b = netlist::read_blif_string(
      ".model b\n.inputs z\n.outputs y\n.names z y\n1 1\n.end\n");
  lint::Report report;
  lint::EquivCheckOptions options;
  options.run_random = false;
  lint::check_equivalence_pair(a, b, options, &report);
  EXPECT_TRUE(report.fired(lint::rules::kEqInterface));
}

TEST(EquivLint, RegisterCountMismatchFiresEq004) {
  const auto a = netlist::read_blif_string(
      ".model a\n.inputs x\n.outputs y\n.latch x y re clk 0\n.end\n");
  const auto b = netlist::read_blif_string(
      ".model b\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n");
  lint::Report report;
  lint::EquivCheckOptions options;
  options.run_random = false;
  const auto result = lint::check_equivalence_pair(a, b, options, &report);
  EXPECT_EQ(result.status, verify::EquivStatus::kUnknown);
  EXPECT_TRUE(report.fired(lint::rules::kEqRegisterMatch));
}

TEST(EquivLint, MiterSatFiresEq001AndRandomMissesIt) {
  const auto good = netlist::read_blif_file(fixture("eq_guard.blif"));
  const auto bad =
      netlist::read_blif_file(fixture("eq_guard_flipped.blif"));
  lint::Report report;
  lint::EquivCheckOptions options;  // random + formal, flow budgets
  const auto result = lint::check_equivalence_pair(good, bad, options,
                                                   &report);
  EXPECT_EQ(result.status, verify::EquivStatus::kNotEquivalent);
  EXPECT_TRUE(report.fired(lint::rules::kEqMiterSat));
  // The random budget misses the 1-in-2^16 divergence pattern.
  EXPECT_FALSE(report.fired(lint::rules::kEqRandomMismatch));
}

TEST(EquivLint, RandomDivergenceFiresEq005) {
  const auto a = netlist::read_blif_string(
      ".model a\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n");
  const auto b = netlist::read_blif_string(
      ".model b\n.inputs x\n.outputs y\n.names x y\n0 1\n.end\n");
  lint::Report report;
  lint::EquivCheckOptions options;
  options.run_formal = false;
  const auto result = lint::check_equivalence_pair(a, b, options, &report);
  EXPECT_EQ(result.status, verify::EquivStatus::kNotEquivalent);
  EXPECT_TRUE(report.fired(lint::rules::kEqRandomMismatch));
}

TEST(EquivLint, BudgetExhaustionFiresEq002) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 300;
  spec.seed = 21;
  const auto net = bench_gen::generate(spec);
  const auto mapped = mapped_copy(net);
  lint::Report report;
  lint::EquivCheckOptions options;
  options.run_random = false;
  // Strangle both the sweeper and the miter solver: the first obligation
  // that needs even one conflict aborts the proof.
  options.formal.sweep_conflict_limit = 1;
  options.formal.conflict_limit = 1;
  const auto result = lint::check_equivalence_pair(net, mapped, options,
                                                   &report);
  EXPECT_EQ(result.status, verify::EquivStatus::kUnknown);
  EXPECT_TRUE(report.fired(lint::rules::kEqInconclusive));
}

// ------------------------------------------------------ flow integration

TEST(FlowVerify, FormalModeProvesAllSevenHandoffs) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 6;
  spec.n_gates = 120;
  spec.n_latches = 8;
  spec.seed = 33;
  const auto net = bench_gen::generate(spec);
  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kFormal;
  flow::FlowSession session(net, options);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  std::uint64_t formal = 0, random = 0, conflicts_counted = 0;
  for (const auto& metrics : session.result().stage_metrics) {
    formal += metrics.counter("verify.formal_checks");
    random += metrics.counter("verify.random_checks");
    conflicts_counted += metrics.counter("verify.sat_conflicts");
  }
  EXPECT_EQ(formal, 7u);
  EXPECT_EQ(random, 0u);
  EXPECT_GT(conflicts_counted, 0u);
}

TEST(FlowVerify, RandomModeKeepsLegacyCheckPoints) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 6;
  spec.n_gates = 120;
  spec.seed = 33;
  const auto net = bench_gen::generate(spec);
  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kRandom;
  flow::FlowSession session(net, options);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  std::uint64_t formal = 0, random = 0;
  for (const auto& metrics : session.result().stage_metrics) {
    formal += metrics.counter("verify.formal_checks");
    random += metrics.counter("verify.random_checks");
  }
  EXPECT_EQ(formal, 0u);
  // Network entry runs the mapping + bitstream legacy points (the EDIF
  // round-trip one belongs to the VHDL entry).
  EXPECT_EQ(random, 2u);
}

TEST(FlowVerify, FormalModeCatchesCorruptedMapping) {
  const auto net = netlist::read_blif_file(fixture("eq_guard.blif"));
  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kFormal;
  flow::FlowSession session(net, options);
  // Sanity: the honest flow passes all seven proofs.
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  // A session whose mapped netlist is corrupted behind the flow's back
  // must fail the next formal barrier. Simulate by proving the fixture
  // pair through the same entry point the flow uses.
  const auto bad =
      netlist::read_blif_file(fixture("eq_guard_flipped.blif"));
  const auto result = verify::prove_equivalence(net, bad);
  EXPECT_EQ(result.status, verify::EquivStatus::kNotEquivalent);
}

TEST(FlowVerify, SeedIsPlumbedIntoReports) {
  const auto net = netlist::read_blif_file(fixture("eq_guard.blif"));
  verify::EquivOptions options;
  options.seed = 42;
  const auto result = verify::prove_equivalence(net, net, options);
  EXPECT_EQ(result.seed, 42u);
  EXPECT_NE(result.to_json().find("\"seed\":42"), std::string::npos);
}

}  // namespace
}  // namespace amdrel

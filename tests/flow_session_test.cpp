#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_gen/bench_gen.hpp"
#include "flow/session.hpp"
#include "json_check.hpp"
#include "netlist/blif.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_field;
using testing::json_valid;

std::string fixture(const std::string& name) {
  return std::string(AMDREL_FIXTURE_DIR) + "/" + name;
}

netlist::Network small_design() {
  bench_gen::BenchSpec spec;
  spec.n_gates = 120;
  spec.n_latches = 8;
  spec.seed = 78;
  return bench_gen::generate(spec);
}

flow::FlowOptions fast_options() {
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;  // keep the 8 flows below quick
  return opt;
}

/// The determinism contract of the redesign: splitting the run at ANY
/// stage boundary yields artifacts bit-identical to the one-shot wrapper.
TEST(FlowSession, RunUntilPlusResumeMatchesOneShotAtEveryBoundary) {
  const auto net = small_design();
  const auto opt = fast_options();
  const auto oneshot = flow::run_flow_from_network(net, opt);
  ASSERT_GT(oneshot.bitstream_bytes.size(), 0u);

  for (int s = 0; s < flow::kNumStages; ++s) {
    const auto boundary = static_cast<flow::Stage>(s);
    flow::FlowSession session(net, opt);
    const auto state = session.run_until(boundary);
    if (boundary == flow::Stage::kBitgen) {
      EXPECT_EQ(state, flow::SessionState::kDone);
    } else {
      EXPECT_EQ(state, flow::SessionState::kReady);
      EXPECT_EQ(session.next_stage(), static_cast<flow::Stage>(s + 1));
    }
    EXPECT_TRUE(session.completed(boundary));
    EXPECT_EQ(session.resume(), flow::SessionState::kDone)
        << "boundary " << flow::stage_name(boundary);
    EXPECT_FALSE(session.next_stage().has_value());

    const flow::FlowResult& r = session.result();
    EXPECT_EQ(r.bitstream_bytes, oneshot.bitstream_bytes)
        << "bitstream differs when split at " << flow::stage_name(boundary);
    EXPECT_EQ(r.channel_width, oneshot.channel_width);
    EXPECT_EQ(r.routing.total_wire_nodes, oneshot.routing.total_wire_nodes);
    EXPECT_EQ(r.routing.iterations, oneshot.routing.iterations);
    EXPECT_EQ(r.map_stats.luts, oneshot.map_stats.luts);
    EXPECT_DOUBLE_EQ(r.place_stats.final_cost, oneshot.place_stats.final_cost);
  }
}

TEST(FlowSession, VhdlEntryMatchesWrapper) {
  const char* kVhdl = R"(
entity blinker is
  port ( clk : in std_logic;
         rst : in std_logic;
         q   : out std_logic_vector(2 downto 0) );
end blinker;
architecture rtl of blinker is
  signal count : std_logic_vector(2 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      count <= (others => '0');
    elsif rising_edge(clk) then
      count <= count + 1;
    end if;
  end process;
  q <= count;
end rtl;
)";
  const auto opt = fast_options();
  const auto wrapper = flow::run_flow_from_vhdl(kVhdl, "blinker", opt);
  flow::FlowSession session(kVhdl, "blinker", opt);
  EXPECT_EQ(session.resume(), flow::SessionState::kDone);
  EXPECT_EQ(session.result().bitstream_bytes, wrapper.bitstream_bytes);
  EXPECT_EQ(session.result().channel_width, wrapper.channel_width);
}

TEST(FlowSession, StageMetricsCoverEveryStage) {
  flow::FlowSession session(small_design(), fast_options());
  EXPECT_EQ(session.resume(), flow::SessionState::kDone);
  for (int s = 0; s < flow::kNumStages; ++s) {
    const auto stage = static_cast<flow::Stage>(s);
    EXPECT_TRUE(session.metrics(stage).ran) << flow::stage_name(stage);
    EXPECT_GE(session.metrics(stage).wall_s, 0.0);
    EXPECT_GT(session.metrics(stage).peak_rss_kb, 0);
  }
  EXPECT_NE(session.result().report().find("stages"), std::string::npos);
}

TEST(FlowSession, TraceJsonlHasOneSpanPerStage) {
  const std::string path = ::testing::TempDir() + "/flow_session_trace.jsonl";
  {
    obs::ScopedSink guard(std::make_unique<obs::JsonlSink>(path));
    flow::FlowSession session(small_design(), fast_options());
    EXPECT_EQ(session.resume(), flow::SessionState::kDone);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::map<std::string, int> begins, ends;
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    ++lines;
    ASSERT_TRUE(json_valid(line)) << line;
    const std::string type = json_field(line, "type").value_or("");
    const std::string name = json_field(line, "name").value_or("");
    if (name.rfind("flow.", 0) == 0) {
      if (type == "begin") ++begins[name];
      if (type == "span") ++ends[name];
    }
  }
  EXPECT_GT(lines, 0);
  for (int s = 0; s < flow::kNumStages; ++s) {
    const std::string span =
        "flow." + std::string(flow::stage_name(static_cast<flow::Stage>(s)));
    EXPECT_EQ(begins[span], 1) << span;
    EXPECT_EQ(ends[span], 1) << span;
  }
  std::remove(path.c_str());
}

/// Requests cancellation from inside the trace stream: the first min-W
/// probe verdict triggers cancel(), which the search observes at its next
/// cancellation point. Exercises a genuine mid-stage (not between-stage)
/// cancel on the session's own thread.
class CancelOnProbeSink : public obs::Sink {
 public:
  explicit CancelOnProbeSink(flow::FlowSession* session)
      : session_(session) {}
  void on_event(const obs::Event& e) override {
    if (std::strcmp(e.name, "route.minw_probe") == 0 &&
        !fired_.exchange(true)) {
      session_->cancel();
    }
  }
  bool fired() const { return fired_.load(); }

 private:
  flow::FlowSession* session_;
  std::atomic<bool> fired_{false};
};

TEST(FlowSession, CancelDuringMinWidthSearchIsResumable) {
  const auto net = small_design();
  auto opt = fast_options();
  opt.search_min_channel_width = true;

  const auto oneshot = flow::run_flow_from_network(net, opt);

  flow::FlowSession session(net, opt);
  CancelOnProbeSink sink(&session);
  obs::set_sink(&sink);
  const auto state = session.resume();
  obs::set_sink(nullptr);

  ASSERT_TRUE(sink.fired());  // the search did emit probe verdicts
  EXPECT_EQ(state, flow::SessionState::kCancelled);
  EXPECT_TRUE(session.completed(flow::Stage::kPlace));
  EXPECT_FALSE(session.completed(flow::Stage::kBitgen));
  if (!session.completed(flow::Stage::kRoute)) {
    // The interrupted route stage left no partial artifacts behind.
    EXPECT_EQ(session.result().rr_graph, nullptr);
    EXPECT_EQ(session.result().channel_width, 0);
    EXPECT_EQ(session.next_stage(), flow::Stage::kRoute);
  }

  // Resuming restarts the interrupted stage and converges to the same
  // result as an uncancelled run (the search is deterministic).
  EXPECT_EQ(session.resume(), flow::SessionState::kDone);
  EXPECT_EQ(session.result().channel_width, oneshot.channel_width);
  EXPECT_EQ(session.result().bitstream_bytes, oneshot.bitstream_bytes);
}

TEST(FlowSession, CancelBetweenStagesIsConsumedOnObservation) {
  flow::FlowSession session(small_design(), fast_options());
  session.cancel();
  EXPECT_EQ(session.run_until(flow::Stage::kSynth),
            flow::SessionState::kCancelled);
  EXPECT_FALSE(session.completed(flow::Stage::kSynth));
  // The request was consumed: the next call runs normally.
  EXPECT_EQ(session.run_until(flow::Stage::kSynth),
            flow::SessionState::kReady);
  EXPECT_TRUE(session.completed(flow::Stage::kSynth));
}

/// Fires cancel() from the kSpanEnd event of a stage span — i.e. after the
/// stage's last cancellation point but before run_until returns. The lost-
/// cancel bug dropped exactly this window: run_until exited kReady with the
/// request still latched (or, worse, cleared by a later exchange), so a
/// caller that had observed "no cancellation" kept going.
class CancelOnStageEndSink : public obs::Sink {
 public:
  explicit CancelOnStageEndSink(flow::FlowSession* session, const char* span)
      : session_(session), span_(span) {}
  void on_event(const obs::Event& e) override {
    if (e.kind == obs::Event::Kind::kSpanEnd &&
        std::strcmp(e.name, span_) == 0 && !fired_.exchange(true)) {
      session_->cancel();
    }
  }
  bool fired() const { return fired_.load(); }

 private:
  flow::FlowSession* session_;
  const char* span_;
  std::atomic<bool> fired_{false};
};

TEST(FlowSession, CancelAfterLastStageOfRequestIsStillObserved) {
  flow::FlowSession session(small_design(), fast_options());
  CancelOnStageEndSink sink(&session, "flow.place");
  obs::set_sink(&sink);
  const auto state = session.run_until(flow::Stage::kPlace);
  obs::set_sink(nullptr);
  ASSERT_TRUE(sink.fired());

  // The request landed after kPlace finished, so the work is complete —
  // but the cancellation must still be reported, not silently dropped.
  EXPECT_EQ(state, flow::SessionState::kCancelled);
  EXPECT_TRUE(session.completed(flow::Stage::kPlace));
  // And it was consumed: the session resumes normally to the end.
  EXPECT_EQ(session.resume(), flow::SessionState::kDone);
}

/// Hammers cancel() from another thread while the session runs. TSan
/// covers the cancel_requested_ orderings (release store in cancel(),
/// acq_rel exchanges in run_until); the assertions check the protocol:
/// every observation is reported as kCancelled and consumed, progress is
/// monotonic, and the session still converges to the one-shot result.
TEST(FlowSession, ConcurrentCancelRequestsNeverWedgeTheSession) {
  const auto net = small_design();
  const auto opt = fast_options();
  const auto oneshot = flow::run_flow_from_network(net, opt);

  flow::FlowSession session(net, opt);
  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      session.cancel();
      std::this_thread::yield();
    }
  });

  int cancellations = 0;
  for (int spins = 0; session.state() != flow::SessionState::kDone;
       ++spins) {
    ASSERT_LT(spins, 10000) << "session wedged by concurrent cancels";
    const auto state = session.resume();
    ASSERT_TRUE(state == flow::SessionState::kDone ||
                state == flow::SessionState::kCancelled);
    if (state == flow::SessionState::kCancelled) ++cancellations;
  }
  stop.store(true, std::memory_order_release);
  canceller.join();

  EXPECT_GT(cancellations, 0);  // the loop really was interrupted
  EXPECT_EQ(session.result().bitstream_bytes, oneshot.bitstream_bytes);
}

TEST(FlowSession, StageFailureCarriesStageNameAndTimes) {
  auto net = netlist::read_blif_file(fixture("defect_comb_loop.blif"));
  flow::FlowSession session(net, flow::FlowOptions{});
  try {
    session.resume();
    FAIL() << "expected the map stage to throw";
  } catch (const InfeasibleError& e) {
    // Type preserved, message prefixed with the failing stage and the
    // per-stage wall times accumulated so far.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("flow stage 'map' failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("synth "), std::string::npos) << msg;
    EXPECT_NE(msg.find("combinational cycle"), std::string::npos) << msg;
  }
  EXPECT_EQ(session.state(), flow::SessionState::kFailed);
  EXPECT_THROW(session.resume(), Error);  // failed sessions stay frozen
}

TEST(FlowSession, WrappersStillProduceCompleteResults) {
  // The documented thin wrappers remain the simple entry point.
  auto result = flow::run_flow_from_network(small_design(), fast_options());
  EXPECT_TRUE(result.routing.success);
  EXPECT_GT(result.bitstream_bytes.size(), 0u);
  for (int s = 0; s < flow::kNumStages; ++s) {
    EXPECT_TRUE(result.stage_metrics[static_cast<std::size_t>(s)].ran);
  }
}

}  // namespace
}  // namespace amdrel

// A/B equivalence of the tile-pattern deduplicated RR graph against the
// dense per-node oracle: node ids, attributes, out-edge order, routing
// results, and bitstream bytes must be identical between the two builds.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "flow/session.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using arch::ArchSpec;
using netlist::Network;

Network make_net(int gates, int latches, std::uint64_t seed) {
  bench_gen::BenchSpec bspec;
  bspec.n_inputs = 10;
  bspec.n_outputs = 8;
  bspec.n_gates = gates;
  bspec.n_latches = latches;
  bspec.seed = seed;
  Network n = bench_gen::generate(bspec);
  return synth::map_to_luts(n, synth::LutMapOptions{4, 8});
}

/// A packed + placed design, optionally on a non-square grid override.
struct Design {
  Network network;
  ArchSpec spec;
  pack::PackedNetlist packed;
  place::Placement placement;

  Design(int gates, int latches, std::uint64_t seed, int nx = 0, int ny = 0)
      : network(make_net(gates, latches, seed)),
        spec(),
        packed(network, spec),
        placement(packed, spec, 1, nx, ny) {}
};

/// Field-by-field node equality (out_edges compared separately).
void expect_same_node(const route::RrNode& a, const route::RrNode& b,
                      int id) {
  EXPECT_EQ(static_cast<int>(a.type), static_cast<int>(b.type)) << "id " << id;
  EXPECT_EQ(a.x, b.x) << "id " << id;
  EXPECT_EQ(a.y, b.y) << "id " << id;
  EXPECT_EQ(a.track, b.track) << "id " << id;
  EXPECT_EQ(a.pin, b.pin) << "id " << id;
  EXPECT_EQ(a.block, b.block) << "id " << id;
  EXPECT_EQ(a.capacity, b.capacity) << "id " << id;
  EXPECT_DOUBLE_EQ(a.base_cost, b.base_cost) << "id " << id;
}

/// Every node attribute and every out-edge (in order) must match the
/// dense oracle. Covers corner/edge/interior wires and all block kinds.
void expect_graphs_identical(const place::Placement& placement,
                             const ArchSpec& spec, int width) {
  route::RrGraph dense(placement, spec, width, route::RrOptions{false});
  route::RrGraph dd(placement, spec, width, route::RrOptions{true});
  ASSERT_EQ(dd.num_nodes(), dense.num_nodes());
  ASSERT_EQ(dd.wire_count(), dense.wire_count());
  EXPECT_EQ(dd.num_edges(), dense.num_edges());
  EXPECT_GT(dd.unique_patterns(), 0);
  EXPECT_EQ(dense.unique_patterns(), 0);
  std::vector<int> edges;
  for (int id = 0; id < dense.num_nodes(); ++id) {
    const route::RrNode& oracle = dense.nodes()[static_cast<std::size_t>(id)];
    expect_same_node(dd.node_info(id), oracle, id);
    edges.clear();
    dd.append_out_edges(id, &edges);
    ASSERT_EQ(edges, oracle.out_edges) << "out-edge mismatch at id " << id;
    for (int e : oracle.out_edges) {
      EXPECT_TRUE(dd.has_edge(id, e));
    }
  }
  // Net terminals resolve to the same ids.
  for (std::size_t ni = 0; ni < placement.nets().size(); ++ni) {
    const int n = static_cast<int>(ni);
    EXPECT_EQ(dd.opin_of_net(n), dense.opin_of_net(n));
    EXPECT_EQ(dd.sinks_of_net(n), dense.sinks_of_net(n));
  }
}

TEST(RrDedup, MatchesDenseOnSquareGrid) {
  Design d(150, 8, 41);
  for (int w : {5, 8, 12}) {
    expect_graphs_identical(d.placement, d.spec, w);
  }
}

TEST(RrDedup, MatchesDenseOnNonSquareGrids) {
  // Wide and tall overrides exercise chanx/chany boundary classes that a
  // square grid's symmetry can mask.
  Design square(150, 8, 42);
  const int nx0 = square.placement.nx();
  const int ny0 = square.placement.ny();
  Design wide(150, 8, 42, nx0 + 3, ny0);
  ASSERT_NE(wide.placement.nx(), wide.placement.ny());
  expect_graphs_identical(wide.placement, wide.spec, 7);
  Design tall(150, 8, 42, nx0, ny0 + 4);
  ASSERT_NE(tall.placement.nx(), tall.placement.ny());
  expect_graphs_identical(tall.placement, tall.spec, 7);
}

TEST(RrDedup, RoutingResultIdentical) {
  Design d(150, 8, 43);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RrGraph dense(d.placement, d.spec, d.spec.channel_width,
                       route::RrOptions{false});
  route::RrGraph dd(d.placement, d.spec, d.spec.channel_width,
                    route::RrOptions{true});
  auto r_dense = route::route_all(dense, d.placement);
  auto r_dd = route::route_all(dd, d.placement);
  ASSERT_TRUE(r_dense.success) << r_dense.message;
  ASSERT_TRUE(r_dd.success) << r_dd.message;
  EXPECT_EQ(r_dd.iterations, r_dense.iterations);
  EXPECT_EQ(r_dd.total_wire_nodes, r_dense.total_wire_nodes);
  ASSERT_EQ(r_dd.routes.size(), r_dense.routes.size());
  for (std::size_t i = 0; i < r_dense.routes.size(); ++i) {
    EXPECT_EQ(r_dd.routes[i].nodes, r_dense.routes[i].nodes) << "net " << i;
    EXPECT_EQ(r_dd.routes[i].parent, r_dense.routes[i].parent) << "net " << i;
  }
  route::verify_routing(dd, d.placement, r_dd);
}

TEST(RrDedup, MinimumChannelWidthIdentical) {
  Design d(120, 0, 44);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RouteOptions dense_opt;
  dense_opt.rr.dedup = false;
  route::RouteOptions dd_opt;
  dd_opt.rr.dedup = true;
  route::RouteResult r_dense, r_dd;
  const int w_dense =
      route::minimum_channel_width(d.placement, d.spec, &r_dense, dense_opt);
  const int w_dd =
      route::minimum_channel_width(d.placement, d.spec, &r_dd, dd_opt);
  EXPECT_EQ(w_dd, w_dense);
  EXPECT_EQ(r_dd.total_wire_nodes, r_dense.total_wire_nodes);
}

TEST(RrDedup, BitstreamBytesIdentical) {
  Design d(150, 8, 45);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RrGraph dense(d.placement, d.spec, d.spec.channel_width,
                       route::RrOptions{false});
  route::RrGraph dd(d.placement, d.spec, d.spec.channel_width,
                    route::RrOptions{true});
  auto r_dense = route::route_all(dense, d.placement);
  auto r_dd = route::route_all(dd, d.placement);
  ASSERT_TRUE(r_dense.success && r_dd.success);
  const auto bytes_dense = bitgen::serialize(bitgen::generate_bitstream(
      d.packed, d.placement, dense, r_dense, d.spec));
  const auto bytes_dd = bitgen::serialize(
      bitgen::generate_bitstream(d.packed, d.placement, dd, r_dd, d.spec));
  EXPECT_EQ(bytes_dd, bytes_dense);

  // The streaming generator must emit exactly the same bytes without ever
  // materializing the Bitstream.
  bitgen::VectorSink streamed;
  bitgen::stream_bitstream(d.packed, d.placement, dd, r_dd, d.spec,
                           &streamed);
  EXPECT_EQ(streamed.bytes(), bytes_dense);
  EXPECT_EQ(streamed.bytes_written(), bytes_dense.size());

  // HashSink digests the same stream to the same FNV-1a value.
  bitgen::HashSink hashed;
  bitgen::stream_bitstream(d.packed, d.placement, dd, r_dd, d.spec, &hashed);
  std::uint64_t want = 1469598103934665603ull;
  for (std::uint8_t b : bytes_dense) {
    want ^= b;
    want *= 1099511628211ull;
  }
  EXPECT_EQ(hashed.hash(), want);
}

TEST(RrDedup, EcoRerouteEquivalentAcrossRepresentations) {
  // The same ECO edit, compiled incrementally on the dedup graph and on
  // the dense oracle, must converge to byte-identical bitstreams: seed
  // translation is pure id arithmetic, so nothing may drift.
  bench_gen::BenchSpec bspec;
  bspec.n_gates = 160;
  bspec.n_latches = 8;
  bspec.seed = 91;
  const Network base = bench_gen::generate(bspec);
  bench_gen::EditSpec edit;
  edit.flips = 2;
  edit.rewires = 1;
  edit.seed = 17;
  const Network edited = bench_gen::perturb(base, edit);

  std::vector<std::uint8_t> bytes[2];
  for (int pass = 0; pass < 2; ++pass) {
    flow::FlowOptions opt;
    opt.verify_mode = flow::VerifyMode::kOff;
    opt.rr_dedup = pass == 0;
    flow::FlowSession session(base, opt);
    ASSERT_EQ(session.resume(), flow::SessionState::kDone);
    ASSERT_EQ(session.resume_with_edit(edited), flow::SessionState::kDone);
    bytes[pass] = session.result().bitstream_bytes;
    ASSERT_FALSE(bytes[pass].empty());
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(RrDedup, CheckedNodeCountGuardsIdSpace) {
  // Fits comfortably: the usual test fabric.
  EXPECT_EQ(route::RrGraph::checked_node_count(10, 10, 8, 500),
            ((11 * 10) + (11 * 10)) * 8 + 500);
  // A giant fabric whose wire count overflows 32-bit ids must throw
  // instead of silently wrapping.
  EXPECT_THROW(route::RrGraph::checked_node_count(200000, 200000, 32, 0),
               Error);
}

TEST(RrDedup, StatsReportPatternCompression) {
  Design d(150, 8, 46);
  route::RrGraph dense(d.placement, d.spec, 8, route::RrOptions{false});
  route::RrGraph dd(d.placement, d.spec, 8, route::RrOptions{true});
  // The dedup representation must be dramatically smaller than the dense
  // one while describing the same graph.
  EXPECT_LT(dd.bytes_est() * 4, dense.bytes_est());
  EXPECT_GT(dd.unique_patterns(), 0);
  EXPECT_LT(dd.unique_patterns(), dd.num_nodes() / 10);
  EXPECT_FALSE(dd.stats().empty());
  // The dense table is only reachable through the oracle build.
  EXPECT_THROW(dd.nodes(), Error);
}

}  // namespace
}  // namespace amdrel

#include <gtest/gtest.h>

#include "bench_gen/bench_gen.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "synth/lutmap.hpp"
#include "synth/opt.hpp"
#include "vhdl/synth.hpp"

namespace amdrel::synth {
namespace {

using netlist::Network;
using netlist::read_blif_string;
using netlist::SignalId;
using netlist::TruthTable;

TEST(Opt, SweepRemovesDeadLogic) {
  Network n = read_blif_string(R"(
.model dead
.inputs a b
.outputs y
.names a b y
11 1
.names a b unused
01 1
.names unused unused2
1 1
.end
)");
  EXPECT_EQ(n.gates().size(), 3u);
  int removed = sweep_dead_logic(n);
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(n.gates().size(), 1u);
  n.validate();
}

TEST(Opt, SweepKeepsLatchCones) {
  Network n = read_blif_string(R"(
.model seq
.inputs a
.outputs q
.latch d q re clk 0
.names a d
0 1
.names clk
0
.end
)");
  int removed = sweep_dead_logic(n);
  EXPECT_EQ(removed, 0);
}

TEST(Opt, ConstantPropagationFolds) {
  Network n = read_blif_string(R"(
.model cp
.inputs a
.outputs y
.names one
1
.names a one y
11 1
.end
)");
  // y = a AND 1 = a → after propagation, a single buffer remains.
  Network p = propagate_constants(n);
  auto r = netlist::check_equivalence(n, p);
  EXPECT_TRUE(r.equivalent) << r.message;
  ASSERT_EQ(p.gates().size(), 1u);
  EXPECT_EQ(p.gates()[0].table, TruthTable::identity());
}

TEST(Opt, DecomposeProducesTwoInputGates) {
  Network n = read_blif_string(R"(
.model wide
.inputs a b c d e
.outputs y
.names a b c d e y
11111 1
00000 1
.end
)");
  Network d2 = decompose_to_2input(n);
  for (const auto& g : d2.gates()) {
    EXPECT_LE(g.table.n_inputs(), 2);
  }
  auto r = netlist::check_equivalence(n, d2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Opt, NetworkCost) {
  Network n = read_blif_string(R"(
.model c
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
11 1
.end
)");
  auto cost = network_cost(n);
  EXPECT_EQ(cost.gates, 2);
  EXPECT_EQ(cost.literals, 4);
  EXPECT_EQ(cost.depth, 2);
}

TEST(LutMap, MapsWideGateIntoSingleLut) {
  Network n = read_blif_string(R"(
.model w4
.inputs a b c d
.outputs y
.names a b t
11 1
.names t c u
10 1
.names u d y
01 1
.end
)");
  LutMapStats stats;
  Network mapped = map_to_luts(n, LutMapOptions{4, 8}, &stats);
  // The whole 4-input cone fits one 4-LUT.
  EXPECT_EQ(stats.luts, 1);
  EXPECT_EQ(stats.depth, 1);
  auto r = netlist::check_equivalence(n, mapped);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(LutMap, RespectsK) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 300;
  spec.seed = 42;
  Network n = bench_gen::generate(spec);
  for (int k : {3, 4, 5}) {
    Network mapped = map_to_luts(n, LutMapOptions{k, 8});
    for (const auto& g : mapped.gates()) {
      EXPECT_LE(g.table.n_inputs(), k);
    }
    auto r = netlist::check_equivalence(n, mapped, 4, 32);
    EXPECT_TRUE(r.equivalent) << "k=" << k << ": " << r.message;
  }
}

TEST(LutMap, SequentialEquivalence) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 4;
  spec.n_gates = 200;
  spec.n_latches = 16;
  spec.seed = 7;
  Network n = bench_gen::generate(spec);
  LutMapStats stats;
  Network mapped = map_to_luts(n, LutMapOptions{4, 8}, &stats);
  EXPECT_GT(stats.luts, 0);
  EXPECT_EQ(mapped.latches().size(), 16u);
  auto r = netlist::check_equivalence(n, mapped, 4, 48);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(LutMap, VhdlCounterEndToEnd) {
  Network n = vhdl::synthesize_vhdl(R"(
entity c8 is
  port ( clk : in std_logic;
         en  : in std_logic;
         q   : out std_logic_vector(7 downto 0) );
end c8;
architecture rtl of c8 is
  signal cnt : std_logic_vector(7 downto 0);
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if en = '1' then
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
)",
                                    "c8");
  LutMapStats stats;
  Network mapped = map_to_luts(n, LutMapOptions{4, 8}, &stats);
  auto r = netlist::check_equivalence(n, mapped, 4, 64);
  EXPECT_TRUE(r.equivalent) << r.message;
  // An 8-bit increment maps into a handful of 4-LUTs, not hundreds.
  EXPECT_LT(stats.luts, 40);
}

TEST(LutMap, MappingReducesDepthVsNaive) {
  // Mapper depth must never exceed the 2-input decomposition depth.
  bench_gen::BenchSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 500;
  spec.seed = 99;
  Network n = bench_gen::generate(spec);
  Network two = decompose_to_2input(n);
  auto base = network_cost(two);
  LutMapStats stats;
  map_to_luts(n, LutMapOptions{4, 8}, &stats);
  EXPECT_LE(stats.depth, base.depth);
  EXPECT_LT(stats.depth, base.depth);  // strictly better on this size
}

TEST(BenchGen, DeterministicAndValid) {
  bench_gen::BenchSpec spec;
  spec.seed = 5;
  Network a = bench_gen::generate(spec);
  Network b = bench_gen::generate(spec);
  auto r = netlist::check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(BenchGen, SuiteIsWellFormed) {
  for (const auto& spec : bench_gen::mcnc_like_suite()) {
    Network n = bench_gen::generate(spec);
    EXPECT_NO_THROW(n.validate()) << spec.name;
    EXPECT_EQ(n.inputs().size(),
              static_cast<std::size_t>(spec.n_inputs + (spec.n_latches ? 1 : 0)))
        << spec.name;
  }
}

}  // namespace
}  // namespace amdrel::synth

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "json_check.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_field;
using testing::json_valid;

/// Records every event for assertions (single-threaded tests only).
class CaptureSink : public obs::Sink {
 public:
  struct Rec {
    obs::Event::Kind kind;
    std::string name;
    double t_s;
    double dur_s;
    std::vector<std::pair<std::string, double>> metrics;
  };
  void on_event(const obs::Event& e) override {
    Rec r{e.kind, e.name, e.t_s, e.dur_s, {}};
    for (std::size_t i = 0; i < e.n_metrics; ++i) {
      r.metrics.emplace_back(e.metrics[i].key, e.metrics[i].value);
    }
    events.push_back(std::move(r));
  }
  std::vector<Rec> events;
};

TEST(Obs, DisabledByDefaultAndEmissionIsInert) {
  ASSERT_EQ(obs::sink(), nullptr);
  EXPECT_FALSE(obs::enabled());
  {
    obs::Span span("test.noop");
    EXPECT_FALSE(span.active());
    span.metric("ignored", 1.0);
    obs::point("test.point", {{"k", 2.0}});
  }  // no sink: nothing to crash on
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, SpanEmitsBeginAndEndWithMetrics) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span span("test.outer");
    EXPECT_TRUE(span.active());
    span.metric("answer", 42.0);
    obs::point("test.inner", {{"a", 1.0}, {"b", 2.5}});
  }
  obs::set_sink(nullptr);

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, obs::Event::Kind::kSpanBegin);
  EXPECT_EQ(sink.events[0].name, "test.outer");
  EXPECT_EQ(sink.events[1].kind, obs::Event::Kind::kPoint);
  EXPECT_EQ(sink.events[1].name, "test.inner");
  ASSERT_EQ(sink.events[1].metrics.size(), 2u);
  EXPECT_EQ(sink.events[1].metrics[1].first, "b");
  EXPECT_DOUBLE_EQ(sink.events[1].metrics[1].second, 2.5);
  EXPECT_EQ(sink.events[2].kind, obs::Event::Kind::kSpanEnd);
  EXPECT_EQ(sink.events[2].name, "test.outer");
  EXPECT_GE(sink.events[2].dur_s, 0.0);
  ASSERT_EQ(sink.events[2].metrics.size(), 1u);
  EXPECT_EQ(sink.events[2].metrics[0].first, "answer");
  EXPECT_DOUBLE_EQ(sink.events[2].metrics[0].second, 42.0);
  // Events are stamped relative to the attach time, in order.
  EXPECT_LE(sink.events[0].t_s, sink.events[2].t_s);
}

TEST(Obs, SpanCapturesSinkAtConstruction) {
  CaptureSink sink;
  obs::set_sink(&sink);
  obs::Span span("test.crossing");
  obs::set_sink(nullptr);
  // The span still delivers its end event to the sink it started with —
  // sinks must outlive their spans, and ScopedSink enforces that order.
  { obs::Span ignored("test.after-detach"); }
  span.metric("m", 1.0);
  // span destructor fires here at the end of scope
  EXPECT_EQ(sink.events.size(), 1u);  // begin only, so far
}

TEST(Obs, ScopedSinkAttachesAndDetaches) {
  ASSERT_EQ(obs::sink(), nullptr);
  {
    obs::ScopedSink guard(std::make_unique<CaptureSink>());
    EXPECT_TRUE(obs::enabled());
  }
  EXPECT_FALSE(obs::enabled());
  { obs::ScopedSink empty; }  // default guard is a no-op
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, JsonlSinkWritesParseableLines) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.jsonl";
  {
    obs::ScopedSink guard(std::make_unique<obs::JsonlSink>(path));
    obs::Span outer("flow.test");
    outer.metric("wall_s", 0.25);
    obs::point("route.probe", {{"width", 12.0}, {"success", 1.0}});
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // begin, point, span end
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_EQ(json_field(lines[0], "type").value_or(""), "begin");
  EXPECT_EQ(json_field(lines[0], "name").value_or(""), "flow.test");
  EXPECT_EQ(json_field(lines[1], "type").value_or(""), "point");
  EXPECT_EQ(json_field(lines[1], "width").value_or(""), "12");
  EXPECT_EQ(json_field(lines[2], "type").value_or(""), "span");
  EXPECT_EQ(json_field(lines[2], "wall_s").value_or(""), "0.25");
  EXPECT_TRUE(json_field(lines[2], "dur").has_value());
  std::remove(path.c_str());
}

TEST(Obs, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::JsonlSink("/nonexistent-dir/trace.jsonl"), Error);
}

TEST(Obs, TextSinkIndentsByDepth) {
  const std::string path = ::testing::TempDir() + "/obs_test_text.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::TextSink sink(f);
    obs::set_sink(&sink);
    {
      obs::Span outer("outer");
      { obs::Span inner("inner"); }
    }
    obs::set_sink(nullptr);
    std::fclose(f);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  ASSERT_NE(text.find("> outer"), std::string::npos);
  ASSERT_NE(text.find("> inner"), std::string::npos);
  EXPECT_NE(text.find("< outer"), std::string::npos);
  // The inner span is printed one indent level deeper than the outer one.
  auto column_of = [&text](const char* needle) {
    const std::size_t pos = text.find(needle);
    const std::size_t bol = text.rfind('\n', pos);
    return pos - (bol == std::string::npos ? 0 : bol + 1);
  };
  EXPECT_LT(column_of("> outer"), column_of("> inner"));
  std::remove(path.c_str());
}

TEST(Obs, PeakRssIsReported) {
  EXPECT_GT(obs::peak_rss_kb(), 0);
}

TEST(Obs, SpanMoveConstructTransfersTheEndEvent) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.moved");
    a.metric("m", 7.0);
    obs::Span b(std::move(a));
    EXPECT_FALSE(a.active());  // moved-from span is inert
    EXPECT_TRUE(b.active());
    // a's destructor runs at scope exit too — it must emit nothing.
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 2u);  // one begin, ONE end
  EXPECT_EQ(sink.events[1].kind, obs::Event::Kind::kSpanEnd);
  EXPECT_EQ(sink.events[1].name, "test.moved");
  ASSERT_EQ(sink.events[1].metrics.size(), 1u);
  EXPECT_EQ(sink.events[1].metrics[0].first, "m");
}

TEST(Obs, SpanMoveAssignFinishesTheOverwrittenSpan) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.first");
    obs::Span b("test.second");
    a = std::move(b);  // "first" must end here, before "second" takes over
    EXPECT_FALSE(b.active());
    ASSERT_EQ(sink.events.size(), 3u);
    EXPECT_EQ(sink.events[2].kind, obs::Event::Kind::kSpanEnd);
    EXPECT_EQ(sink.events[2].name, "test.first");
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(sink.events[3].name, "test.second");
}

TEST(Obs, SpanSelfMoveAssignIsANoOp) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.self");
    obs::Span& alias = a;
    a = std::move(alias);
    EXPECT_TRUE(a.active());
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 2u);  // begin + end exactly once
}

// Regression test for the ScopedSink move-assignment hazard: the RHS
// guard installs its sink first (construction), then the assignment
// destroys the LHS guard's state. The LHS release() must not clobber the
// just-installed replacement — detach-if-ours has to be one atomic
// compare-exchange, not a sink()==ours check followed by set_sink(null).
TEST(Obs, ScopedSinkMoveAssignKeepsTheReplacementInstalled) {
  obs::ScopedSink guard(std::make_unique<CaptureSink>());
  ASSERT_TRUE(obs::enabled());
  guard = obs::ScopedSink(std::make_unique<CaptureSink>());
  // The replacement sink (installed by the RHS temporary before the old
  // guard was torn down) must still be attached.
  EXPECT_TRUE(obs::enabled());
  obs::Sink* replacement = obs::sink();
  ASSERT_NE(replacement, nullptr);
  { obs::Span span("test.on-replacement"); }
  EXPECT_EQ(static_cast<CaptureSink*>(replacement)->events.size(), 2u);
  guard = obs::ScopedSink();  // empty guard assignment detaches cleanly
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, ScopedSinkReleaseLeavesAForeignSinkAlone) {
  CaptureSink foreign;
  {
    obs::ScopedSink guard(std::make_unique<CaptureSink>());
    // Someone replaces the global sink while the guard is alive; the
    // guard's destructor must not detach the foreign sink.
    obs::set_sink(&foreign);
  }
  EXPECT_EQ(obs::sink(), &foreign);
  obs::set_sink(nullptr);
}

TEST(Obs, JsonlSinkFlushEachWritesLinesImmediately) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_flush.jsonl";
  obs::JsonlSink sink(path, /*flush_each=*/true);
  obs::set_sink(&sink);
  obs::point("test.durable", {{"v", 1.0}});
  obs::set_sink(nullptr);
  // With flush-after-every-line the event is on disk while the sink is
  // still open — that is the crash-durability contract of the flag.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_valid(line)) << line;
  EXPECT_EQ(json_field(line, "name").value_or(""), "test.durable");
  std::remove(path.c_str());
}

TEST(Obs, TextSinkConcurrentSpansStayLineAtomicAndDepthNonNegative) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_text_mt.txt";
  constexpr int kThreads = 4;
  constexpr int kRepeats = 25;
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::TextSink sink(f);
    obs::set_sink(&sink);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kRepeats; ++i) {
          obs::Span outer("mt.outer");
          obs::Span inner("mt.inner");
        }
      });
    }
    for (auto& w : workers) w.join();
    obs::set_sink(nullptr);
    std::fclose(f);
  }
  std::ifstream in(path);
  int lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    // Line-atomic output: every line is one complete event record, even
    // under concurrent writers (the sink serializes under its mutex).
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line[0], '[') << line;
    EXPECT_TRUE(line.find("> mt.") != std::string::npos ||
                line.find("< mt.") != std::string::npos)
        << line;
    // Interleaved begin/end from other threads may shrink the shared
    // depth, but it must never underflow into garbage indentation: the
    // event marker appears within the plausible indent range.
    const std::size_t marker = line.find_first_of("><", 11);
    ASSERT_NE(marker, std::string::npos) << line;
    // "[%8.3fs] " is 12 columns; depth can reach 2 spans × kThreads.
    EXPECT_LE(marker, 12u + 2u * 2u * kThreads) << line;
  }
  EXPECT_EQ(lines, kThreads * kRepeats * 4);  // begin+end × outer+inner
  std::remove(path.c_str());
}

TEST(Obs, SpanWithSuppliedTimestampsReportsExactDuration) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("test.pinned", t0);
    const auto t1 = t0 + std::chrono::milliseconds(250);
    span.freeze_duration(t1);
    // Metrics attached after the freeze still land on the end event, and
    // a second freeze is ignored.
    span.metric("after_freeze", 1.0);
    span.freeze_duration(t1 + std::chrono::seconds(5));
  }
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.events[1].dur_s, 0.25);
  ASSERT_EQ(sink.events[1].metrics.size(), 1u);
  EXPECT_EQ(sink.events[1].metrics[0].first, "after_freeze");
  obs::set_sink(nullptr);
}

}  // namespace
}  // namespace amdrel

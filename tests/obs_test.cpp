#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_field;
using testing::json_valid;

/// Records every event for assertions (single-threaded tests only).
class CaptureSink : public obs::Sink {
 public:
  struct Rec {
    obs::Event::Kind kind;
    std::string name;
    double t_s;
    double dur_s;
    std::vector<std::pair<std::string, double>> metrics;
  };
  void on_event(const obs::Event& e) override {
    Rec r{e.kind, e.name, e.t_s, e.dur_s, {}};
    for (std::size_t i = 0; i < e.n_metrics; ++i) {
      r.metrics.emplace_back(e.metrics[i].key, e.metrics[i].value);
    }
    events.push_back(std::move(r));
  }
  std::vector<Rec> events;
};

TEST(Obs, DisabledByDefaultAndEmissionIsInert) {
  ASSERT_EQ(obs::sink(), nullptr);
  EXPECT_FALSE(obs::enabled());
  {
    obs::Span span("test.noop");
    EXPECT_FALSE(span.active());
    span.metric("ignored", 1.0);
    obs::point("test.point", {{"k", 2.0}});
  }  // no sink: nothing to crash on
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, SpanEmitsBeginAndEndWithMetrics) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span span("test.outer");
    EXPECT_TRUE(span.active());
    span.metric("answer", 42.0);
    obs::point("test.inner", {{"a", 1.0}, {"b", 2.5}});
  }
  obs::set_sink(nullptr);

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, obs::Event::Kind::kSpanBegin);
  EXPECT_EQ(sink.events[0].name, "test.outer");
  EXPECT_EQ(sink.events[1].kind, obs::Event::Kind::kPoint);
  EXPECT_EQ(sink.events[1].name, "test.inner");
  ASSERT_EQ(sink.events[1].metrics.size(), 2u);
  EXPECT_EQ(sink.events[1].metrics[1].first, "b");
  EXPECT_DOUBLE_EQ(sink.events[1].metrics[1].second, 2.5);
  EXPECT_EQ(sink.events[2].kind, obs::Event::Kind::kSpanEnd);
  EXPECT_EQ(sink.events[2].name, "test.outer");
  EXPECT_GE(sink.events[2].dur_s, 0.0);
  ASSERT_EQ(sink.events[2].metrics.size(), 1u);
  EXPECT_EQ(sink.events[2].metrics[0].first, "answer");
  EXPECT_DOUBLE_EQ(sink.events[2].metrics[0].second, 42.0);
  // Events are stamped relative to the attach time, in order.
  EXPECT_LE(sink.events[0].t_s, sink.events[2].t_s);
}

TEST(Obs, SpanCapturesSinkAtConstruction) {
  CaptureSink sink;
  obs::set_sink(&sink);
  obs::Span span("test.crossing");
  obs::set_sink(nullptr);
  // The span still delivers its end event to the sink it started with —
  // sinks must outlive their spans, and ScopedSink enforces that order.
  { obs::Span ignored("test.after-detach"); }
  span.metric("m", 1.0);
  // span destructor fires here at the end of scope
  EXPECT_EQ(sink.events.size(), 1u);  // begin only, so far
}

TEST(Obs, ScopedSinkAttachesAndDetaches) {
  ASSERT_EQ(obs::sink(), nullptr);
  {
    obs::ScopedSink guard(std::make_unique<CaptureSink>());
    EXPECT_TRUE(obs::enabled());
  }
  EXPECT_FALSE(obs::enabled());
  { obs::ScopedSink empty; }  // default guard is a no-op
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, JsonlSinkWritesParseableLines) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.jsonl";
  {
    obs::ScopedSink guard(std::make_unique<obs::JsonlSink>(path));
    obs::Span outer("flow.test");
    outer.metric("wall_s", 0.25);
    obs::point("route.probe", {{"width", 12.0}, {"success", 1.0}});
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // begin, point, span end
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_EQ(json_field(lines[0], "type").value_or(""), "begin");
  EXPECT_EQ(json_field(lines[0], "name").value_or(""), "flow.test");
  EXPECT_EQ(json_field(lines[1], "type").value_or(""), "point");
  EXPECT_EQ(json_field(lines[1], "width").value_or(""), "12");
  EXPECT_EQ(json_field(lines[2], "type").value_or(""), "span");
  EXPECT_EQ(json_field(lines[2], "wall_s").value_or(""), "0.25");
  EXPECT_TRUE(json_field(lines[2], "dur").has_value());
  std::remove(path.c_str());
}

TEST(Obs, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::JsonlSink("/nonexistent-dir/trace.jsonl"), Error);
}

TEST(Obs, TextSinkIndentsByDepth) {
  const std::string path = ::testing::TempDir() + "/obs_test_text.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::TextSink sink(f);
    obs::set_sink(&sink);
    {
      obs::Span outer("outer");
      { obs::Span inner("inner"); }
    }
    obs::set_sink(nullptr);
    std::fclose(f);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  ASSERT_NE(text.find("> outer"), std::string::npos);
  ASSERT_NE(text.find("> inner"), std::string::npos);
  EXPECT_NE(text.find("< outer"), std::string::npos);
  // The inner span is printed one indent level deeper than the outer one.
  auto column_of = [&text](const char* needle) {
    const std::size_t pos = text.find(needle);
    const std::size_t bol = text.rfind('\n', pos);
    return pos - (bol == std::string::npos ? 0 : bol + 1);
  };
  EXPECT_LT(column_of("> outer"), column_of("> inner"));
  std::remove(path.c_str());
}

TEST(Obs, PeakRssIsReported) {
  EXPECT_GT(obs::peak_rss_kb(), 0);
}

}  // namespace
}  // namespace amdrel

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "json_check.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_field;
using testing::json_valid;

/// Records every event for assertions (single-threaded tests only).
class CaptureSink : public obs::Sink {
 public:
  struct Rec {
    obs::Event::Kind kind;
    std::string name;
    double t_s;
    double dur_s;
    std::uint64_t id;
    std::uint64_t parent;
    std::string trace;
    std::vector<std::pair<std::string, double>> metrics;
  };
  void on_event(const obs::Event& e) override {
    Rec r{e.kind,   e.name, e.t_s, e.dur_s, e.id, e.parent,
          e.trace != nullptr ? e.trace : "", {}};
    for (std::size_t i = 0; i < e.n_metrics; ++i) {
      r.metrics.emplace_back(e.metrics[i].key, e.metrics[i].value);
    }
    events.push_back(std::move(r));
  }
  std::vector<Rec> events;
};

TEST(Obs, DisabledByDefaultAndEmissionIsInert) {
  ASSERT_EQ(obs::sink(), nullptr);
  EXPECT_FALSE(obs::enabled());
  {
    obs::Span span("test.noop");
    EXPECT_FALSE(span.active());
    span.metric("ignored", 1.0);
    obs::point("test.point", {{"k", 2.0}});
  }  // no sink: nothing to crash on
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, SpanEmitsBeginAndEndWithMetrics) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span span("test.outer");
    EXPECT_TRUE(span.active());
    span.metric("answer", 42.0);
    obs::point("test.inner", {{"a", 1.0}, {"b", 2.5}});
  }
  obs::set_sink(nullptr);

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, obs::Event::Kind::kSpanBegin);
  EXPECT_EQ(sink.events[0].name, "test.outer");
  EXPECT_EQ(sink.events[1].kind, obs::Event::Kind::kPoint);
  EXPECT_EQ(sink.events[1].name, "test.inner");
  ASSERT_EQ(sink.events[1].metrics.size(), 2u);
  EXPECT_EQ(sink.events[1].metrics[1].first, "b");
  EXPECT_DOUBLE_EQ(sink.events[1].metrics[1].second, 2.5);
  EXPECT_EQ(sink.events[2].kind, obs::Event::Kind::kSpanEnd);
  EXPECT_EQ(sink.events[2].name, "test.outer");
  EXPECT_GE(sink.events[2].dur_s, 0.0);
  ASSERT_EQ(sink.events[2].metrics.size(), 1u);
  EXPECT_EQ(sink.events[2].metrics[0].first, "answer");
  EXPECT_DOUBLE_EQ(sink.events[2].metrics[0].second, 42.0);
  // Events are stamped relative to the attach time, in order.
  EXPECT_LE(sink.events[0].t_s, sink.events[2].t_s);
}

TEST(Obs, SpanCapturesSinkAtConstruction) {
  CaptureSink sink;
  obs::set_sink(&sink);
  obs::Span span("test.crossing");
  obs::set_sink(nullptr);
  // The span still delivers its end event to the sink it started with —
  // sinks must outlive their spans, and ScopedSink enforces that order.
  { obs::Span ignored("test.after-detach"); }
  span.metric("m", 1.0);
  // span destructor fires here at the end of scope
  EXPECT_EQ(sink.events.size(), 1u);  // begin only, so far
}

TEST(Obs, ScopedSinkAttachesAndDetaches) {
  ASSERT_EQ(obs::sink(), nullptr);
  {
    obs::ScopedSink guard(std::make_unique<CaptureSink>());
    EXPECT_TRUE(obs::enabled());
  }
  EXPECT_FALSE(obs::enabled());
  { obs::ScopedSink empty; }  // default guard is a no-op
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, JsonlSinkWritesParseableLines) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.jsonl";
  {
    obs::ScopedSink guard(std::make_unique<obs::JsonlSink>(path));
    obs::Span outer("flow.test");
    outer.metric("wall_s", 0.25);
    obs::point("route.probe", {{"width", 12.0}, {"success", 1.0}});
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // begin, point, span end
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_EQ(json_field(lines[0], "type").value_or(""), "begin");
  EXPECT_EQ(json_field(lines[0], "name").value_or(""), "flow.test");
  EXPECT_EQ(json_field(lines[1], "type").value_or(""), "point");
  EXPECT_EQ(json_field(lines[1], "width").value_or(""), "12");
  EXPECT_EQ(json_field(lines[2], "type").value_or(""), "span");
  EXPECT_EQ(json_field(lines[2], "wall_s").value_or(""), "0.25");
  EXPECT_TRUE(json_field(lines[2], "dur").has_value());
  std::remove(path.c_str());
}

TEST(Obs, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::JsonlSink("/nonexistent-dir/trace.jsonl"), Error);
}

TEST(Obs, TextSinkIndentsByDepth) {
  const std::string path = ::testing::TempDir() + "/obs_test_text.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::TextSink sink(f);
    obs::set_sink(&sink);
    {
      obs::Span outer("outer");
      { obs::Span inner("inner"); }
    }
    obs::set_sink(nullptr);
    std::fclose(f);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  ASSERT_NE(text.find("> outer"), std::string::npos);
  ASSERT_NE(text.find("> inner"), std::string::npos);
  EXPECT_NE(text.find("< outer"), std::string::npos);
  // The inner span is printed one indent level deeper than the outer one.
  auto column_of = [&text](const char* needle) {
    const std::size_t pos = text.find(needle);
    const std::size_t bol = text.rfind('\n', pos);
    return pos - (bol == std::string::npos ? 0 : bol + 1);
  };
  EXPECT_LT(column_of("> outer"), column_of("> inner"));
  std::remove(path.c_str());
}

TEST(Obs, PeakRssIsReported) {
  EXPECT_GT(obs::peak_rss_kb(), 0);
}

TEST(Obs, SpanMoveConstructTransfersTheEndEvent) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.moved");
    a.metric("m", 7.0);
    obs::Span b(std::move(a));
    EXPECT_FALSE(a.active());  // moved-from span is inert
    EXPECT_TRUE(b.active());
    // a's destructor runs at scope exit too — it must emit nothing.
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 2u);  // one begin, ONE end
  EXPECT_EQ(sink.events[1].kind, obs::Event::Kind::kSpanEnd);
  EXPECT_EQ(sink.events[1].name, "test.moved");
  ASSERT_EQ(sink.events[1].metrics.size(), 1u);
  EXPECT_EQ(sink.events[1].metrics[0].first, "m");
}

TEST(Obs, SpanMoveAssignFinishesTheOverwrittenSpan) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.first");
    obs::Span b("test.second");
    a = std::move(b);  // "first" must end here, before "second" takes over
    EXPECT_FALSE(b.active());
    ASSERT_EQ(sink.events.size(), 3u);
    EXPECT_EQ(sink.events[2].kind, obs::Event::Kind::kSpanEnd);
    EXPECT_EQ(sink.events[2].name, "test.first");
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(sink.events[3].name, "test.second");
  // Closing "first" out of LIFO order must not poison the thread's
  // open-span chain: a fresh span afterwards is a root again.
  obs::set_sink(&sink);
  { obs::Span after("test.after"); }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 6u);
  EXPECT_EQ(sink.events[4].parent, 0u);
}

TEST(Obs, SpanSelfMoveAssignIsANoOp) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span a("test.self");
    obs::Span& alias = a;
    a = std::move(alias);
    EXPECT_TRUE(a.active());
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 2u);  // begin + end exactly once
}

// Regression test for the ScopedSink move-assignment hazard: the RHS
// guard installs its sink first (construction), then the assignment
// destroys the LHS guard's state. The LHS release() must not clobber the
// just-installed replacement — detach-if-ours has to be one atomic
// compare-exchange, not a sink()==ours check followed by set_sink(null).
TEST(Obs, ScopedSinkMoveAssignKeepsTheReplacementInstalled) {
  obs::ScopedSink guard(std::make_unique<CaptureSink>());
  ASSERT_TRUE(obs::enabled());
  guard = obs::ScopedSink(std::make_unique<CaptureSink>());
  // The replacement sink (installed by the RHS temporary before the old
  // guard was torn down) must still be attached.
  EXPECT_TRUE(obs::enabled());
  obs::Sink* replacement = obs::sink();
  ASSERT_NE(replacement, nullptr);
  { obs::Span span("test.on-replacement"); }
  EXPECT_EQ(static_cast<CaptureSink*>(replacement)->events.size(), 2u);
  guard = obs::ScopedSink();  // empty guard assignment detaches cleanly
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, ScopedSinkReleaseLeavesAForeignSinkAlone) {
  CaptureSink foreign;
  {
    obs::ScopedSink guard(std::make_unique<CaptureSink>());
    // Someone replaces the global sink while the guard is alive; the
    // guard's destructor must not detach the foreign sink.
    obs::set_sink(&foreign);
  }
  EXPECT_EQ(obs::sink(), &foreign);
  obs::set_sink(nullptr);
}

TEST(Obs, JsonlSinkFlushEachWritesLinesImmediately) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_flush.jsonl";
  obs::JsonlSink sink(path, /*flush_each=*/true);
  obs::set_sink(&sink);
  obs::point("test.durable", {{"v", 1.0}});
  obs::set_sink(nullptr);
  // With flush-after-every-line the event is on disk while the sink is
  // still open — that is the crash-durability contract of the flag.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_valid(line)) << line;
  EXPECT_EQ(json_field(line, "name").value_or(""), "test.durable");
  std::remove(path.c_str());
}

TEST(Obs, TextSinkConcurrentSpansStayLineAtomicAndDepthNonNegative) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_text_mt.txt";
  constexpr int kThreads = 4;
  constexpr int kRepeats = 25;
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    obs::TextSink sink(f);
    obs::set_sink(&sink);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kRepeats; ++i) {
          obs::Span outer("mt.outer");
          obs::Span inner("mt.inner");
        }
      });
    }
    for (auto& w : workers) w.join();
    obs::set_sink(nullptr);
    std::fclose(f);
  }
  std::ifstream in(path);
  int lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    // Line-atomic output: every line is one complete event record, even
    // under concurrent writers (the sink serializes under its mutex).
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line[0], '[') << line;
    EXPECT_TRUE(line.find("> mt.") != std::string::npos ||
                line.find("< mt.") != std::string::npos)
        << line;
    // Interleaved begin/end from other threads may shrink the shared
    // depth, but it must never underflow into garbage indentation: the
    // event marker appears within the plausible indent range.
    const std::size_t marker = line.find_first_of("><", 11);
    ASSERT_NE(marker, std::string::npos) << line;
    // "[%8.3fs] " is 12 columns; depth can reach 2 spans × kThreads.
    EXPECT_LE(marker, 12u + 2u * 2u * kThreads) << line;
  }
  EXPECT_EQ(lines, kThreads * kRepeats * 4);  // begin+end × outer+inner
  std::remove(path.c_str());
}

TEST(Obs, SpanWithSuppliedTimestampsReportsExactDuration) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    const auto t0 = std::chrono::steady_clock::now();
    obs::Span span("test.pinned", t0);
    const auto t1 = t0 + std::chrono::milliseconds(250);
    span.freeze_duration(t1);
    // Metrics attached after the freeze still land on the end event, and
    // a second freeze is ignored.
    span.metric("after_freeze", 1.0);
    span.freeze_duration(t1 + std::chrono::seconds(5));
  }
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.events[1].dur_s, 0.25);
  ASSERT_EQ(sink.events[1].metrics.size(), 1u);
  EXPECT_EQ(sink.events[1].metrics[0].first, "after_freeze");
  obs::set_sink(nullptr);
}

TEST(Obs, SpansCarryIdsAndParentLinkage) {
  CaptureSink sink;
  obs::set_sink(&sink);
  {
    obs::Span outer("test.outer");
    ASSERT_NE(outer.id(), 0u);
    {
      obs::Span inner("test.inner");
      ASSERT_NE(inner.id(), 0u);
      EXPECT_NE(inner.id(), outer.id());
      obs::point("test.p", {{"k", 1.0}});
    }
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 5u);  // begin, begin, point, end, end
  const auto& outer_begin = sink.events[0];
  const auto& inner_begin = sink.events[1];
  const auto& point = sink.events[2];
  const auto& inner_end = sink.events[3];
  const auto& outer_end = sink.events[4];
  EXPECT_EQ(outer_begin.parent, 0u);          // root
  EXPECT_EQ(inner_begin.parent, outer_begin.id);
  EXPECT_EQ(point.id, 0u);                    // points have no id...
  EXPECT_EQ(point.parent, inner_begin.id);    // ...but link to the open span
  EXPECT_EQ(inner_end.id, inner_begin.id);
  EXPECT_EQ(outer_end.id, outer_begin.id);
  // Child ids are allocated after (so greater than) their parent's.
  EXPECT_GT(inner_begin.id, outer_begin.id);
  // No context installed: events carry no trace tag.
  EXPECT_TRUE(outer_begin.trace.empty());
}

TEST(Obs, ScopedContextRoutesToContextSinkAndTagsTrace) {
  CaptureSink global, scoped;
  obs::set_sink(&global);
  {
    obs::TraceContext ctx(&scoped, "job-7");
    obs::ScopedContext guard(&ctx);
    EXPECT_EQ(obs::context(), &ctx);
    obs::Span span("test.routed");
    obs::point("test.routed-point", {{"k", 1.0}});
  }
  EXPECT_EQ(obs::context(), nullptr);
  { obs::Span span("test.global-again"); }
  obs::set_sink(nullptr);

  // Everything emitted under the context went to its sink, tagged.
  ASSERT_EQ(scoped.events.size(), 3u);
  for (const auto& e : scoped.events) EXPECT_EQ(e.trace, "job-7");
  // The global sink saw only the span begun after the context exited,
  // untagged.
  ASSERT_EQ(global.events.size(), 2u);
  EXPECT_EQ(global.events[0].name, "test.global-again");
  EXPECT_TRUE(global.events[0].trace.empty());
}

TEST(Obs, NullContextGuardIsANoOp) {
  CaptureSink global;
  obs::set_sink(&global);
  {
    obs::ScopedContext guard(nullptr);
    EXPECT_EQ(obs::context(), nullptr);
    obs::Span span("test.fallback");  // falls through to the global sink
  }
  obs::set_sink(nullptr);
  ASSERT_EQ(global.events.size(), 2u);
  EXPECT_EQ(global.events[0].name, "test.fallback");
}

TEST(Obs, ContextWithNullSinkSuppressesTracing) {
  CaptureSink global;
  obs::set_sink(&global);
  {
    obs::TraceContext ctx;  // null sink: this thread opted out
    obs::ScopedContext guard(&ctx);
    EXPECT_FALSE(obs::enabled());
    obs::Span span("test.suppressed");
    EXPECT_FALSE(span.active());
    obs::point("test.suppressed-point", {{"k", 1.0}});
  }
  EXPECT_TRUE(obs::enabled());
  obs::set_sink(nullptr);
  EXPECT_TRUE(global.events.empty());
}

TEST(Obs, ScopedContextRestoresOuterParentChain) {
  CaptureSink global, scoped;
  obs::set_sink(&global);
  {
    obs::Span outer("test.outer");
    {
      obs::TraceContext ctx(&scoped, "job-9");
      obs::ScopedContext guard(&ctx);
      // Inside the context the parent chain restarts: the job's first
      // span is a root of its own trace, not a child of test.outer.
      obs::Span inner("test.context-root");
      EXPECT_EQ(scoped.events.back().parent, 0u);
    }
    // After the context exits, new spans chain to test.outer again.
    obs::Span sibling("test.after-context");
    EXPECT_EQ(global.events.back().parent, outer.id());
  }
  obs::set_sink(nullptr);
}

TEST(Obs, ReinstallingTheCurrentContextKeepsTheParentChain) {
  CaptureSink scoped;
  obs::TraceContext ctx(&scoped, "job-5");
  obs::ScopedContext outer_guard(&ctx);
  obs::Span root("serve.job");
  {
    // The daemon's pattern: FlowSession re-installs the same context on
    // the worker thread. The redundant guard must not restart the chain —
    // stage spans stay children of the daemon's root span.
    obs::ScopedContext inner_guard(&ctx);
    obs::Span stage("flow.synth");
    EXPECT_EQ(scoped.events.back().parent, root.id());
  }
  obs::Span after("flow.map");
  EXPECT_EQ(scoped.events.back().parent, root.id());
}

TEST(Obs, ContextClockStartsAtTheContextEpoch) {
  CaptureSink scoped;
  // No global sink at all: the context alone enables tracing.
  ASSERT_FALSE(obs::enabled());
  obs::TraceContext ctx(&scoped, "job-3");
  obs::ScopedContext guard(&ctx);
  EXPECT_TRUE(obs::enabled());
  { obs::Span span("test.epoch"); }
  ASSERT_EQ(scoped.events.size(), 2u);
  // The context was created moments ago; its clock starts there, not at
  // some ancient global attach.
  EXPECT_GE(scoped.events[0].t_s, 0.0);
  EXPECT_LT(scoped.events[0].t_s, 60.0);
}

TEST(Obs, JsonlSinkWritesIdParentAndTraceFields) {
  const std::string path =
      ::testing::TempDir() + "/obs_test_ctx_trace.jsonl";
  {
    obs::JsonlSink sink(path);
    obs::TraceContext ctx(&sink, "job-42");
    obs::ScopedContext guard(&ctx);
    obs::Span outer("flow.test");
    { obs::Span inner("flow.inner"); }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // begin begin end end
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_EQ(json_field(line, "trace").value_or(""), "job-42") << line;
    EXPECT_TRUE(json_field(line, "id").has_value()) << line;
  }
  const std::string outer_id = json_field(lines[0], "id").value_or("");
  // The outer span is a root: its begin omits "parent" (zero fields are
  // left out for backward compatibility); the inner one links to it.
  EXPECT_FALSE(json_field(lines[0], "parent").has_value());
  EXPECT_EQ(json_field(lines[1], "parent").value_or(""), outer_id);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace amdrel

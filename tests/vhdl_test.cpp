#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "util/error.hpp"
#include "vhdl/lexer.hpp"
#include "vhdl/parser.hpp"
#include "vhdl/synth.hpp"

namespace amdrel::vhdl {
namespace {

using netlist::Network;
using netlist::Simulator;

TEST(Lexer, TokenizesBasics) {
  auto tokens = lex_vhdl("entity Foo is -- comment\n  x <= '1'; y := \"01\";");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "entity");  // lower-cased
  EXPECT_EQ(tokens[1].text, "foo");
  // '1' char literal
  bool found_char = false, found_string = false;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kCharLit && t.text == "1") found_char = true;
    if (t.kind == TokenKind::kStringLit && t.text == "01") found_string = true;
  }
  EXPECT_TRUE(found_char);
  EXPECT_TRUE(found_string);
}

TEST(Lexer, DistinguishesTickUses) {
  auto tokens = lex_vhdl("clk'event and clk = '1'");
  // clk ' event and clk = '1'
  EXPECT_EQ(tokens[0].text, "clk");
  EXPECT_EQ(tokens[1].text, "'");
  EXPECT_EQ(tokens[2].text, "event");
  EXPECT_EQ(tokens[5].kind, TokenKind::kSymbol);
  EXPECT_EQ(tokens[6].kind, TokenKind::kCharLit);
}

TEST(Lexer, RejectsBadChar) {
  EXPECT_THROW(lex_vhdl("x @ y"), ParseError);
}

const char* kAndGate = R"(
library ieee;
use ieee.std_logic_1164.all;

entity and_gate is
  port ( a, b : in std_logic;
         y    : out std_logic );
end and_gate;

architecture rtl of and_gate is
begin
  y <= a and b;
end rtl;
)";

TEST(Parser, ParsesEntityAndArchitecture) {
  DesignFile df = parse_vhdl(kAndGate);
  ASSERT_EQ(df.entities.size(), 1u);
  EXPECT_EQ(df.entities[0].name, "and_gate");
  ASSERT_EQ(df.entities[0].ports.size(), 3u);
  EXPECT_TRUE(df.entities[0].ports[0].is_input);
  EXPECT_FALSE(df.entities[0].ports[2].is_input);
  ASSERT_EQ(df.architectures.size(), 1u);
  EXPECT_EQ(df.architectures[0].entity_name, "and_gate");
}

TEST(Parser, RejectsUnsupported) {
  EXPECT_THROW(parse_vhdl("entity e is generic (n : integer); end e;"),
               ParseError);
  EXPECT_THROW(parse_vhdl("entity e is port (x : inout std_logic); end e;"),
               ParseError);
}

TEST(Synth, AndGate) {
  Network n = synthesize_vhdl(kAndGate, "and_gate");
  n.validate();
  Simulator sim(n);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      sim.set_input_by_name("a", a);
      sim.set_input_by_name("b", b);
      sim.propagate();
      EXPECT_EQ(sim.value(n.find_signal("y")), (a && b)) << a << b;
    }
  }
}

TEST(Synth, VectorOpsAndConcat) {
  Network n = synthesize_vhdl(R"(
entity vec is
  port ( a : in std_logic_vector(3 downto 0);
         b : in std_logic_vector(3 downto 0);
         y : out std_logic_vector(3 downto 0);
         c : out std_logic_vector(7 downto 0) );
end vec;
architecture rtl of vec is
begin
  y <= a xor b;
  c <= a & b;   -- a is the high nibble
end rtl;
)",
                              "vec");
  Simulator sim(n);
  auto set_vec = [&](const std::string& name, int value, int width) {
    for (int i = 0; i < width; ++i) {
      sim.set_input_by_name(name + "_" + std::to_string(i), (value >> i) & 1);
    }
  };
  auto get_vec = [&](const std::string& name, int width) {
    int v = 0;
    for (int i = 0; i < width; ++i) {
      if (sim.value(n.find_signal(name + "_" + std::to_string(i)))) {
        v |= 1 << i;
      }
    }
    return v;
  };
  set_vec("a", 0b1100, 4);
  set_vec("b", 0b1010, 4);
  sim.propagate();
  EXPECT_EQ(get_vec("y", 4), 0b0110);
  EXPECT_EQ(get_vec("c", 8), 0b11001010);
}

TEST(Synth, AdderMatchesIntegers) {
  Network n = synthesize_vhdl(R"(
entity add8 is
  port ( a : in std_logic_vector(7 downto 0);
         b : in std_logic_vector(7 downto 0);
         s : out std_logic_vector(7 downto 0) );
end add8;
architecture rtl of add8 is
begin
  s <= a + b;
end rtl;
)",
                              "add8");
  Simulator sim(n);
  auto set_vec = [&](const std::string& name, int value) {
    for (int i = 0; i < 8; ++i) {
      sim.set_input_by_name(name + "_" + std::to_string(i), (value >> i) & 1);
    }
  };
  for (int a : {0, 1, 37, 200, 255}) {
    for (int b : {0, 1, 19, 128, 255}) {
      set_vec("a", a);
      set_vec("b", b);
      sim.propagate();
      int s = 0;
      for (int i = 0; i < 8; ++i) {
        if (sim.value(n.find_signal("s_" + std::to_string(i)))) s |= 1 << i;
      }
      EXPECT_EQ(s, (a + b) & 0xff) << a << "+" << b;
    }
  }
}

const char* kCounter = R"(
entity counter is
  port ( clk : in std_logic;
         rst : in std_logic;
         en  : in std_logic;
         q   : out std_logic_vector(3 downto 0) );
end counter;
architecture rtl of counter is
  signal count : std_logic_vector(3 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      count <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        count <= count + 1;
      end if;
    end if;
  end process;
  q <= count;
end rtl;
)";

TEST(Synth, CounterWithResetAndEnable) {
  Network n = synthesize_vhdl(kCounter, "counter");
  EXPECT_EQ(n.latches().size(), 4u);
  Simulator sim(n);
  auto q = [&]() {
    int v = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.value(n.find_signal("q_" + std::to_string(i)))) v |= 1 << i;
    }
    return v;
  };
  sim.set_input_by_name("rst", false);
  sim.set_input_by_name("en", true);
  sim.set_input_by_name("clk", false);
  for (int cycle = 1; cycle <= 20; ++cycle) {
    sim.propagate();
    sim.step_clock();
    sim.propagate();
    EXPECT_EQ(q(), cycle & 0xf) << cycle;
  }
  // Enable low freezes.
  sim.set_input_by_name("en", false);
  sim.propagate();
  int frozen = q();
  sim.step_clock();
  sim.propagate();
  EXPECT_EQ(q(), frozen);
  // Reset clears (synthesized synchronously).
  sim.set_input_by_name("rst", true);
  sim.propagate();
  sim.step_clock();
  sim.propagate();
  EXPECT_EQ(q(), 0);
}

TEST(Synth, CaseStatementMux) {
  Network n = synthesize_vhdl(R"(
entity mux4 is
  port ( sel : in std_logic_vector(1 downto 0);
         a, b, c, d : in std_logic;
         y : out std_logic );
end mux4;
architecture rtl of mux4 is
begin
  process(sel, a, b, c, d)
  begin
    case sel is
      when "00" => y <= a;
      when "01" => y <= b;
      when "10" => y <= c;
      when others => y <= d;
    end case;
  end process;
end rtl;
)",
                              "mux4");
  Simulator sim(n);
  const char* names[] = {"a", "b", "c", "d"};
  for (int sel = 0; sel < 4; ++sel) {
    sim.set_input_by_name("sel_0", sel & 1);
    sim.set_input_by_name("sel_1", (sel >> 1) & 1);
    for (int i = 0; i < 4; ++i) sim.set_input_by_name(names[i], i == sel);
    sim.propagate();
    EXPECT_TRUE(sim.value(n.find_signal("y"))) << sel;
    for (int i = 0; i < 4; ++i) sim.set_input_by_name(names[i], i != sel);
    sim.propagate();
    EXPECT_FALSE(sim.value(n.find_signal("y"))) << sel;
  }
}

TEST(Synth, ConditionalAndSelectedAssigns) {
  Network n = synthesize_vhdl(R"(
entity sel is
  port ( s : in std_logic_vector(1 downto 0);
         a, b : in std_logic;
         y, z : out std_logic );
end sel;
architecture rtl of sel is
begin
  y <= a when s = "00" else
       b when s = "01" else
       '0';
  with s select
    z <= a when "10",
         b when "01" | "11",
         '1' when others;
end rtl;
)",
                              "sel");
  Simulator sim(n);
  auto run = [&](int s, bool a, bool b) {
    sim.set_input_by_name("s_0", s & 1);
    sim.set_input_by_name("s_1", (s >> 1) & 1);
    sim.set_input_by_name("a", a);
    sim.set_input_by_name("b", b);
    sim.propagate();
  };
  run(0, true, false);
  EXPECT_TRUE(sim.value(n.find_signal("y")));
  EXPECT_TRUE(sim.value(n.find_signal("z")));  // others → '1'
  run(1, false, true);
  EXPECT_TRUE(sim.value(n.find_signal("y")));   // b
  EXPECT_TRUE(sim.value(n.find_signal("z")));   // b
  run(2, false, true);
  EXPECT_FALSE(sim.value(n.find_signal("y")));  // else '0'
  EXPECT_FALSE(sim.value(n.find_signal("z")));  // a = 0
  run(3, true, false);
  EXPECT_FALSE(sim.value(n.find_signal("z")));  // b = 0
}

TEST(Synth, HierarchicalInstantiation) {
  Network n = synthesize_vhdl(R"(
entity half_adder is
  port ( a, b : in std_logic; s, c : out std_logic );
end half_adder;
architecture rtl of half_adder is
begin
  s <= a xor b;
  c <= a and b;
end rtl;

entity full_adder is
  port ( x, y, cin : in std_logic; sum, cout : out std_logic );
end full_adder;
architecture structural of full_adder is
  signal s1, c1, c2 : std_logic;
begin
  u1 : entity work.half_adder port map ( a => x, b => y, s => s1, c => c1 );
  u2 : entity work.half_adder port map ( a => s1, b => cin, s => sum, c => c2 );
  cout <= c1 or c2;
end structural;
)",
                              "full_adder");
  Simulator sim(n);
  for (int v = 0; v < 8; ++v) {
    sim.set_input_by_name("x", v & 1);
    sim.set_input_by_name("y", (v >> 1) & 1);
    sim.set_input_by_name("cin", (v >> 2) & 1);
    sim.propagate();
    int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(sim.value(n.find_signal("sum")), total & 1) << v;
    EXPECT_EQ(sim.value(n.find_signal("cout")), (total >> 1) & 1) << v;
  }
}

TEST(Synth, ComparisonOperators) {
  Network n = synthesize_vhdl(R"(
entity cmp is
  port ( a : in std_logic_vector(3 downto 0);
         lt, ge, eq : out std_logic );
end cmp;
architecture rtl of cmp is
begin
  lt <= '1' when a < 5 else '0';
  ge <= '1' when a >= 10 else '0';
  eq <= '1' when a = 7 else '0';
end rtl;
)",
                              "cmp");
  Simulator sim(n);
  for (int a = 0; a < 16; ++a) {
    for (int i = 0; i < 4; ++i) {
      sim.set_input_by_name("a_" + std::to_string(i), (a >> i) & 1);
    }
    sim.propagate();
    EXPECT_EQ(sim.value(n.find_signal("lt")), a < 5) << a;
    EXPECT_EQ(sim.value(n.find_signal("ge")), a >= 10) << a;
    EXPECT_EQ(sim.value(n.find_signal("eq")), a == 7) << a;
  }
}

TEST(Synth, LatchInferenceRejected) {
  EXPECT_THROW(synthesize_vhdl(R"(
entity bad is
  port ( c, a : in std_logic; y : out std_logic );
end bad;
architecture rtl of bad is
begin
  process(c, a)
  begin
    if c = '1' then
      y <= a;
    end if;
  end process;
end rtl;
)",
                               "bad"),
               ParseError);
}

TEST(Synth, AssignToInputRejected) {
  EXPECT_THROW(synthesize_vhdl(R"(
entity bad2 is
  port ( a : in std_logic; y : out std_logic );
end bad2;
architecture rtl of bad2 is
begin
  a <= '1';
  y <= a;
end rtl;
)",
                               "bad2"),
               ParseError);
}

TEST(Synth, RoundTripThroughBlif) {
  Network n = synthesize_vhdl(kCounter, "counter");
  std::string blif = netlist::write_blif_string(n);
  Network n2 = netlist::read_blif_string(blif);
  auto r = netlist::check_equivalence(n, n2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

}  // namespace
}  // namespace amdrel::vhdl

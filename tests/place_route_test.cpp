#include <gtest/gtest.h>

#include "bench_gen/bench_gen.hpp"
#include "pack/pack.hpp"
#include "place/multiseed.hpp"
#include "place/place.hpp"
#include "route/pathfinder.hpp"
#include "route/route_files.hpp"
#include "route/rr_graph.hpp"
#include "synth/lutmap.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using arch::ArchSpec;
using netlist::Network;

struct Design {
  Network network;
  ArchSpec spec;
  pack::PackedNetlist packed;
  place::Placement placement;

  Design(int gates, int latches, std::uint64_t seed, ArchSpec s = {})
      : network(make_net(gates, latches, seed)),
        spec(s),
        packed(network, spec),
        placement(packed, spec) {}

  static Network make_net(int gates, int latches, std::uint64_t seed) {
    bench_gen::BenchSpec bspec;
    bspec.n_inputs = 10;
    bspec.n_outputs = 8;
    bspec.n_gates = gates;
    bspec.n_latches = latches;
    bspec.seed = seed;
    Network n = bench_gen::generate(bspec);
    return synth::map_to_luts(n, synth::LutMapOptions{4, 8});
  }
};

TEST(Place, InitialPlacementIsLegal) {
  Design d(200, 16, 31);
  d.placement.validate();
  EXPECT_GT(d.placement.nets().size(), 0u);
  EXPECT_GT(d.placement.total_cost(), 0.0);
}

TEST(Place, AnnealImprovesCost) {
  Design d(300, 0, 32);
  place::Placement::AnnealOptions opt;
  opt.seed = 3;
  auto stats = d.placement.anneal(opt);
  EXPECT_LT(stats.final_cost, stats.initial_cost);
  EXPECT_GT(stats.temperatures, 3);
  d.placement.validate();
}

TEST(Place, DeterministicForSeed) {
  Design d1(150, 8, 33);
  Design d2(150, 8, 33);
  place::Placement::AnnealOptions opt;
  opt.seed = 9;
  auto s1 = d1.placement.anneal(opt);
  auto s2 = d2.placement.anneal(opt);
  EXPECT_DOUBLE_EQ(s1.final_cost, s2.final_cost);
  // Bit-identical block locations, not just equal cost.
  ASSERT_EQ(d1.placement.blocks().size(), d2.placement.blocks().size());
  for (std::size_t b = 0; b < d1.placement.blocks().size(); ++b) {
    EXPECT_TRUE(d1.placement.location(static_cast<int>(b)) ==
                d2.placement.location(static_cast<int>(b)))
        << "block " << b << " placed differently across identical runs";
  }
}

TEST(Place, IncrementalCostMatchesScratchAfterAnneal) {
  // The annealer asserts incremental-vs-scratch agreement once per
  // temperature internally; this checks the end state on three circuits.
  for (std::uint64_t seed : {61u, 62u, 63u}) {
    Design d(250, 16, seed);
    place::Placement::AnnealOptions opt;
    opt.seed = 5;
    opt.incremental = true;
    auto stats = d.placement.anneal(opt);
    const double scratch = d.placement.total_cost();
    EXPECT_NEAR(stats.final_cost, scratch, 1e-6 * std::max(1.0, scratch));
    d.placement.validate();
  }
}

TEST(Place, IncrementalMatchesOracleAnneal) {
  // Same circuit, same seeds: the incremental bbox path and the
  // full-recompute oracle sum per-net cost deltas in the same order, so
  // they accept the same moves, consume the same rng stream, and anneal
  // along bit-identical trajectories — not just equal-quality ones.
  for (std::uint64_t seed : {64u, 65u, 66u}) {
    Design d_inc(200, 8, seed);
    Design d_orc(200, 8, seed);
    place::Placement::AnnealOptions opt;
    opt.seed = 7;
    opt.incremental = true;
    auto s_inc = d_inc.placement.anneal(opt);
    opt.incremental = false;
    auto s_orc = d_orc.placement.anneal(opt);
    EXPECT_DOUBLE_EQ(s_inc.final_cost, s_orc.final_cost) << "seed " << seed;
    EXPECT_EQ(s_inc.moves, s_orc.moves);
    EXPECT_EQ(s_inc.accepted, s_orc.accepted);
    ASSERT_EQ(d_inc.placement.blocks().size(), d_orc.placement.blocks().size());
    for (std::size_t b = 0; b < d_inc.placement.blocks().size(); ++b) {
      EXPECT_TRUE(d_inc.placement.location(static_cast<int>(b)) ==
                  d_orc.placement.location(static_cast<int>(b)))
          << "seed " << seed << " block " << b
          << " diverged between incremental and oracle anneals";
    }
    d_inc.placement.validate();
    d_orc.placement.validate();
  }
}

TEST(Place, BlockByNameFindsEveryBlock) {
  Design d(120, 8, 67);
  for (std::size_t b = 0; b < d.placement.blocks().size(); ++b) {
    EXPECT_EQ(d.placement.block_by_name(d.placement.blocks()[b].name),
              static_cast<int>(b));
  }
  EXPECT_EQ(d.placement.block_by_name("no_such_block"), -1);
}

TEST(Place, ClockNetIsGlobal) {
  Design d(150, 12, 34);
  // No placed net may carry the clock signal.
  netlist::SignalId clk = d.network.find_signal("clk");
  ASSERT_NE(clk, netlist::kNoSignal);
  for (const auto& net : d.placement.nets()) {
    EXPECT_NE(net.signal, clk);
  }
}

TEST(RrGraph, WellFormed) {
  Design d(150, 8, 35);
  // Dense oracle build: .nodes() materializes per-node edge lists.
  route::RrGraph graph(d.placement, d.spec, 10, route::RrOptions{false});
  const auto& nodes = graph.nodes();
  EXPECT_GT(nodes.size(), 100u);
  // Every edge target in range; IPINs feed exactly one sink.
  for (const auto& n : nodes) {
    for (int e : n.out_edges) {
      ASSERT_GE(e, 0);
      ASSERT_LT(e, static_cast<int>(nodes.size()));
    }
    if (n.type == route::RrType::kSink) {
      EXPECT_TRUE(n.out_edges.empty());
      EXPECT_GE(n.capacity, 1);
    }
  }
  // Net terminals exist for every net.
  for (std::size_t ni = 0; ni < d.placement.nets().size(); ++ni) {
    EXPECT_GE(graph.opin_of_net(static_cast<int>(ni)), 0);
  }
}

TEST(Route, SmallDesignRoutes) {
  Design d(120, 8, 36);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RrGraph graph(d.placement, d.spec, d.spec.channel_width);
  auto result = route::route_all(graph, d.placement);
  ASSERT_TRUE(result.success) << result.message;
  route::verify_routing(graph, d.placement, result);
  EXPECT_GT(result.total_wire_nodes, 0);
}

TEST(Route, MinimumChannelWidthSearch) {
  Design d(120, 0, 37);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RouteResult result;
  int w = route::minimum_channel_width(d.placement, d.spec, &result);
  ASSERT_GT(w, 0);
  EXPECT_TRUE(result.success);
  // Must fail at w-1 if w > 4 (otherwise w was not minimal).
  if (w > 4) {
    route::RrGraph tight(d.placement, d.spec, w - 1);
    auto r2 = route::route_all(tight, d.placement);
    EXPECT_FALSE(r2.success);
  }
}

TEST(Route, BetterPlacementRoutesNarrower) {
  // Property: annealed placement needs no wider a channel than random.
  Design d(250, 16, 38);
  route::RouteResult r_random;
  int w_random =
      route::minimum_channel_width(d.placement, d.spec, &r_random);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RouteResult r_annealed;
  int w_annealed =
      route::minimum_channel_width(d.placement, d.spec, &r_annealed);
  ASSERT_GT(w_random, 0);
  ASSERT_GT(w_annealed, 0);
  EXPECT_LE(w_annealed, w_random);
}

TEST(MultiSeed, PicksBestOfSeeds) {
  Design d(200, 8, 39);
  place::MultiSeedOptions opt;
  opt.n_seeds = 3;
  opt.n_threads = 3;
  auto result = place::place_multi_seed(d.packed, d.spec, opt);
  ASSERT_NE(result.best, nullptr);
  result.best->validate();
  // The winner is no worse than the losers.
  EXPECT_LE(result.best_stats.final_cost, result.worst_cost + 1e-9);
  // And matches a single-seed run with the winning seed (which seeds the
  // initial placement too, so every attempt starts from its own shuffle).
  place::Placement single(d.packed, d.spec, result.best_seed);
  place::Placement::AnnealOptions aopt = opt.anneal;
  aopt.seed = result.best_seed;
  auto stats = single.anneal(aopt);
  EXPECT_DOUBLE_EQ(stats.final_cost, result.best_stats.final_cost);
}

TEST(MultiSeed, SeedsStartFromDistinctInitialPlacements) {
  Design d(150, 0, 43);
  place::Placement p1(d.packed, d.spec, 1);
  place::Placement p2(d.packed, d.spec, 2);
  bool any_differ = false;
  for (std::size_t b = 0; b < p1.blocks().size() && !any_differ; ++b) {
    any_differ = !(p1.location(static_cast<int>(b)) ==
                   p2.location(static_cast<int>(b)));
  }
  EXPECT_TRUE(any_differ) << "different placement seeds gave the same "
                             "initial placement";
}

TEST(Route, IncrementalMatchesOracleRouter) {
  // Congestion-driven incremental rerouting must reach the same minimum
  // channel width as the rip-up-everything oracle, and both routings must
  // be fully legal, on several circuits.
  for (std::uint64_t seed : {71u, 72u, 73u}) {
    Design d(180, 8, seed);
    place::Placement::AnnealOptions popt;
    d.placement.anneal(popt);

    route::RouteOptions inc;
    inc.incremental = true;
    route::RouteResult r_inc;
    const int w_inc =
        route::minimum_channel_width(d.placement, d.spec, &r_inc, inc);

    route::RouteOptions orc;
    orc.incremental = false;
    route::RouteResult r_orc;
    const int w_orc =
        route::minimum_channel_width(d.placement, d.spec, &r_orc, orc);

    ASSERT_GT(w_inc, 0);
    EXPECT_EQ(w_inc, w_orc) << "seed " << seed;
    route::RrGraph g_inc(d.placement, d.spec, w_inc);
    route::verify_routing(g_inc, d.placement, r_inc);
    route::RrGraph g_orc(d.placement, d.spec, w_orc);
    route::verify_routing(g_orc, d.placement, r_orc);
  }
}

TEST(Route, IncrementalRerouteIsLegalAtFixedWidth) {
  for (std::uint64_t seed : {74u, 75u, 76u}) {
    Design d(150, 8, seed);
    place::Placement::AnnealOptions popt;
    d.placement.anneal(popt);
    route::RrGraph graph(d.placement, d.spec, d.spec.channel_width);
    route::RouteOptions inc;
    inc.incremental = true;
    auto r_inc = route::route_all(graph, d.placement, inc);
    route::RouteOptions orc;
    orc.incremental = false;
    auto r_orc = route::route_all(graph, d.placement, orc);
    ASSERT_EQ(r_inc.success, r_orc.success) << "seed " << seed;
    if (r_inc.success) {
      route::verify_routing(graph, d.placement, r_inc);
      route::verify_routing(graph, d.placement, r_orc);
    }
  }
}

TEST(Route, MinWidthSearchIndependentOfThreads) {
  Design d(160, 8, 77);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RouteOptions o1;
  o1.probe_threads = 1;
  route::RouteResult r1;
  const int w1 = route::minimum_channel_width(d.placement, d.spec, &r1, o1);
  route::RouteOptions o4;
  o4.probe_threads = 4;
  route::RouteResult r4;
  const int w4 = route::minimum_channel_width(d.placement, d.spec, &r4, o4);
  ASSERT_GT(w1, 0);
  EXPECT_EQ(w1, w4);
  EXPECT_EQ(r1.total_wire_nodes, r4.total_wire_nodes);
  ASSERT_EQ(r1.routes.size(), r4.routes.size());
  for (std::size_t ni = 0; ni < r1.routes.size(); ++ni) {
    EXPECT_EQ(r1.routes[ni].nodes, r4.routes[ni].nodes) << "net " << ni;
  }
}

TEST(RouteFiles, PlaceFileRoundTrip) {
  Design d(150, 8, 40);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  std::string text = route::write_place_string(d.placement);
  EXPECT_NE(text.find("Array size:"), std::string::npos);

  // Load the locations into a freshly shuffled placement: costs must agree.
  Design d2(150, 8, 40);
  route::read_place_string(text, &d2.placement);
  EXPECT_DOUBLE_EQ(d2.placement.total_cost(), d.placement.total_cost());
}

TEST(RouteFiles, PlaceFileRejectsGarbage) {
  Design d(80, 0, 41);
  EXPECT_THROW(route::read_place_string("nonsense 1 2 3\n", &d.placement),
               Error);
  EXPECT_THROW(route::read_place_string("", &d.placement), Error);
}

TEST(RouteFiles, RouteFileListsEveryNet) {
  Design d(120, 8, 42);
  place::Placement::AnnealOptions popt;
  d.placement.anneal(popt);
  route::RrGraph graph(d.placement, d.spec, d.spec.channel_width);
  auto result = route::route_all(graph, d.placement);
  ASSERT_TRUE(result.success);
  std::string text = route::write_route_string(graph, d.placement, result);
  for (std::size_t ni = 0; ni < d.placement.nets().size(); ++ni) {
    EXPECT_NE(text.find("Net " + std::to_string(ni) + " ("),
              std::string::npos);
  }
  EXPECT_NE(text.find("OPIN"), std::string::npos);
  EXPECT_NE(text.find("SINK"), std::string::npos);
}

}  // namespace
}  // namespace amdrel

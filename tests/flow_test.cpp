#include <gtest/gtest.h>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "flow/flow.hpp"
#include "netlist/simulate.hpp"
#include "power/power.hpp"
#include "timing/timing.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

const char* kCounterVhdl = R"(
entity counter is
  port ( clk : in std_logic;
         rst : in std_logic;
         en  : in std_logic;
         q   : out std_logic_vector(3 downto 0) );
end counter;
architecture rtl of counter is
  signal count : std_logic_vector(3 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      count <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        count <= count + 1;
      end if;
    end if;
  end process;
  q <= count;
end rtl;
)";

TEST(Flow, VhdlToBitstreamWithVerification) {
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kBoth;  // includes the formal bitstream proof
  auto result = flow::run_flow_from_vhdl(kCounterVhdl, "counter", opt);
  EXPECT_TRUE(result.routing.success);
  EXPECT_GT(result.bitstream_bytes.size(), 0u);
  EXPECT_GT(result.timing.fmax_hz, 1e6);
  EXPECT_GT(result.power.total_w, 0.0);
  EXPECT_FALSE(result.report().empty());
}

TEST(Flow, SyntheticDesignEndToEnd) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 8;
  spec.n_gates = 220;
  spec.n_latches = 16;
  spec.seed = 77;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  auto result = flow::run_flow_from_network(net, opt);
  EXPECT_TRUE(result.routing.success);
  // Timing sanity: critical path within a plausible 0.18 µm range.
  EXPECT_GT(result.timing.critical_path_s, 0.5e-9);
  EXPECT_LT(result.timing.critical_path_s, 200e-9);
  // Power sanity.
  EXPECT_GT(result.power.logic_w, 0.0);
  EXPECT_GT(result.power.routing_w, 0.0);
  EXPECT_GT(result.power.clock_w, 0.0);
  EXPECT_GT(result.power.leakage_w, 0.0);
}

TEST(Flow, MinChannelWidthMode) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 120;
  spec.seed = 78;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.search_min_channel_width = true;
  auto result = flow::run_flow_from_network(net, opt);
  EXPECT_TRUE(result.routing.success);
  EXPECT_GT(result.channel_width, 0);
  EXPECT_LE(result.channel_width, 128);
}

TEST(Flow, ClockGatingReducesClockPower) {
  // The paper's central claim: gated clocks save power when registers are
  // often idle. Use a design whose FFs rarely toggle (low input activity).
  bench_gen::BenchSpec spec;
  spec.n_gates = 200;
  spec.n_latches = 32;
  spec.seed = 79;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.power.input_activity = 0.05;  // mostly idle
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);
  EXPECT_LT(result.power.clock_w, result.power.clock_ungated_w);
}

TEST(Bitstream, SerializeRoundTrip) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 100;
  spec.n_latches = 8;
  spec.seed = 80;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);

  auto bytes = bitgen::serialize(result.bitstream);
  auto back = bitgen::deserialize(bytes);
  EXPECT_EQ(back.design, result.bitstream.design);
  EXPECT_EQ(back.clbs.size(), result.bitstream.clbs.size());
  EXPECT_EQ(back.wire_switches.size(), result.bitstream.wire_switches.size());
  EXPECT_EQ(back.config_bits(), result.bitstream.config_bits());
}

TEST(Bitstream, DecodedFabricIsSequentiallyEquivalent) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 150;
  spec.n_latches = 12;
  spec.seed = 81;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);

  auto fabric = bitgen::decode_to_network(result.bitstream);
  auto r = netlist::check_equivalence(*result.mapped, fabric, 6, 64);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Bitstream, RejectsCorruptedBytes) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 60;
  spec.seed = 82;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);
  auto bytes = result.bitstream_bytes;
  bytes[0] ^= 0xff;  // clobber magic
  EXPECT_THROW(bitgen::deserialize(bytes), Error);
  auto truncated = result.bitstream_bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(bitgen::deserialize(truncated), Error);
}

TEST(Timing, NetDelaysArePositiveAndBounded) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 150;
  spec.seed = 83;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);
  auto delays = timing::compute_net_delays(*result.rr_graph,
                                           *result.placement, result.routing,
                                           opt.arch);
  int counted = 0;
  for (const auto& nd : delays) {
    for (const auto& [blk, d] : nd.to_block) {
      EXPECT_GT(d, 0.0);
      EXPECT_LT(d, 50e-9);
      ++counted;
    }
  }
  EXPECT_GT(counted, 0);
}

TEST(Power, ScalesWithFrequency) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 150;
  spec.n_latches = 8;
  spec.seed = 84;
  auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  auto result = flow::run_flow_from_network(net, opt);

  power::PowerOptions p1, p2;
  p1.clock_hz = 50e6;
  p2.clock_hz = 200e6;
  auto r1 = power::estimate_power(*result.packed, *result.placement,
                                  *result.rr_graph, result.routing, opt.arch,
                                  p1);
  auto r2 = power::estimate_power(*result.packed, *result.placement,
                                  *result.rr_graph, result.routing, opt.arch,
                                  p2);
  // Dynamic terms scale 4×; leakage does not.
  EXPECT_NEAR(r2.logic_w / r1.logic_w, 4.0, 0.01);
  EXPECT_NEAR(r2.routing_w / r1.routing_w, 4.0, 0.01);
  EXPECT_DOUBLE_EQ(r2.leakage_w, r1.leakage_w);
}

}  // namespace
}  // namespace amdrel

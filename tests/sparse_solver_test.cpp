// Sparse-vs-dense MNA backend equivalence, thread-pool determinism of the
// parallel sweep harnesses, and regression tests for the waveform
// measurement fixes (exact-sample crossings, trapezoidal source energy).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cells/characterize.hpp"
#include "cells/detff.hpp"
#include "cells/primitives.hpp"
#include "spice/transient.hpp"

namespace amdrel::spice {
namespace {

using cells::add_detff;
using cells::add_inverter;
using cells::add_nand2;
using cells::add_pass_nmos;
using cells::DetffKind;

// Golden settings: pure absolute NR criterion, no device bypass, tight
// tolerance — both backends then iterate to the same fixed point and the
// traces must agree to solver roundoff.
TransientOptions golden_options(double t_stop, double dt) {
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = dt;
  opt.nr_tol = 1e-10;
  opt.nr_reltol = 0.0;
  opt.nr_bypass = 0.0;
  return opt;
}

double max_trace_diff(const TransientResult& a, const TransientResult& b) {
  EXPECT_EQ(a.time.size(), b.time.size());
  EXPECT_EQ(a.voltage.size(), b.voltage.size());
  double worst = 0.0;
  std::size_t worst_n = 0, worst_k = 0;
  for (std::size_t n = 0; n < a.voltage.size(); ++n) {
    for (std::size_t k = 0; k < a.voltage[n].size(); ++k) {
      const double d = std::fabs(a.voltage[n][k] - b.voltage[n][k]);
      if (d > worst) {
        worst = d;
        worst_n = n;
        worst_k = k;
      }
    }
  }
  if (worst > 1e-9) {
    ADD_FAILURE() << "worst diff " << worst << " at node " << worst_n
                  << " sample " << worst_k << " t=" << a.time[worst_k]
                  << " sparse=" << a.voltage[worst_n][worst_k]
                  << " dense=" << b.voltage[worst_n][worst_k];
  }
  return worst;
}

double run_both_and_diff(const Circuit& c, const TransientOptions& opt) {
  TransientSim sparse(c, MnaSolver::kSparse);
  TransientSim dense(c, MnaSolver::kDense);
  auto rs = sparse.run(opt);
  auto rd = dense.run(opt);
  return max_trace_diff(rs, rd);
}

TEST(SparseGolden, DetffTraceMatchesDense) {
  Circuit c;
  NodeId vdd = c.node("vdd");
  NodeId clk = c.node("clk");
  NodeId d = c.node("d");
  NodeId q = c.node("q");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  c.add_vsource("vclk", clk, kGround,
                Waveform::pulse(0, 1.8, 0.5e-9, 50e-12, 50e-12, 0.9e-9, 2e-9));
  c.add_vsource("vd", d, kGround,
                Waveform::pwl({{0, 0}, {0.25e-9, 0}, {0.3e-9, 1.8}}));
  add_detff(c, "ff", vdd, DetffKind::kLlopis1, d, clk, q);
  c.add_capacitor("cload", q, kGround, 20e-15);
  EXPECT_LE(run_both_and_diff(c, golden_options(2e-9, 2e-12)), 1e-9);
}

TEST(SparseGolden, BleClockPathTraceMatchesDense) {
  // The Table-2 gated clock path: NAND + inverter driving the FF clock.
  Circuit c;
  NodeId vdd = c.node("vdd");
  NodeId clk = c.node("clk");
  NodeId en = c.node("en");
  NodeId d = c.node("d");
  NodeId q = c.node("q");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  c.add_vsource("vclk", clk, kGround,
                Waveform::pulse(0, 1.8, 0.5e-9, 50e-12, 50e-12, 0.9e-9, 2e-9));
  c.add_vsource("ven", en, kGround, Waveform::dc(1.8));
  c.add_vsource("vd", d, kGround, Waveform::dc(0.0));
  NodeId nand_out = c.node("nand_out");
  NodeId ffclk = c.node("ffclk");
  add_nand2(c, "gate", vdd, clk, en, nand_out, 0.42);
  add_inverter(c, "gateinv", vdd, nand_out, ffclk, 0.42);
  add_detff(c, "ff", vdd, DetffKind::kLlopis1, d, ffclk, q);
  c.add_capacitor("cload", q, kGround, 20e-15);
  EXPECT_LE(run_both_and_diff(c, golden_options(2e-9, 2e-12)), 1e-9);
}

TEST(SparseGolden, PassTransistorChainTraceMatchesDense) {
  // A Fig-7-style routing chain: driver, two NMOS pass switches joined by
  // RC wire segments, receiving inverter.
  Circuit c;
  NodeId vdd = c.node("vdd");
  NodeId in = c.node("in");
  NodeId en = c.node("en");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  c.add_vsource("vin", in, kGround,
                Waveform::pulse(0, 1.8, 0.5e-9, 50e-12, 50e-12, 0.9e-9, 2e-9));
  c.add_vsource("ven", en, kGround, Waveform::dc(1.8));
  NodeId drv = c.node("drv");
  add_inverter(c, "drv", vdd, in, drv, 0.56);
  NodeId w1 = c.node("w1");
  NodeId w2 = c.node("w2");
  NodeId w3 = c.node("w3");
  add_pass_nmos(c, "sw1", drv, w1, en, 2.8);
  c.add_resistor("rw1", w1, w2, 120.0);
  c.add_cap_to_ground(w1, 3e-15);
  c.add_cap_to_ground(w2, 3e-15);
  add_pass_nmos(c, "sw2", w2, w3, en, 2.8);
  c.add_cap_to_ground(w3, 2e-15);
  NodeId out = c.node("out");
  add_inverter(c, "rx", vdd, w3, out, 0.28);
  c.add_capacitor("cl", out, kGround, 5e-15);
  EXPECT_LE(run_both_and_diff(c, golden_options(2e-9, 2e-12)), 1e-9);
}

TEST(SparseGolden, EnergyAgreesBetweenBackends) {
  // Energy ordering of the Table-1/2/3 benches is preserved if per-source
  // energies agree to far better than the inter-cell differences.
  Circuit c;
  NodeId vdd = c.node("vdd");
  NodeId in = c.node("in");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  c.add_vsource("vin", in, kGround,
                Waveform::pulse(0, 1.8, 0.5e-9, 50e-12, 50e-12, 0.9e-9, 2e-9));
  NodeId out = c.node("out");
  add_inverter(c, "inv", vdd, in, out, 0.28);
  c.add_capacitor("cl", out, kGround, 10e-15);
  auto opt = golden_options(2e-9, 2e-12);
  TransientSim sparse(c, MnaSolver::kSparse);
  TransientSim dense(c, MnaSolver::kDense);
  const double es = sparse.run(opt).energy_from("vdd");
  const double ed = dense.run(opt).energy_from("vdd");
  EXPECT_NEAR(es, ed, 1e-3 * std::fabs(ed));
}

}  // namespace
}  // namespace amdrel::spice

namespace amdrel::cells {
namespace {

TEST(ParallelSweeps, AllDetffsDeterministicAcrossThreadCounts) {
  DetffBenchOptions serial, parallel;
  serial.n_cycles = parallel.n_cycles = 1;
  serial.n_threads = 1;
  parallel.n_threads = 4;
  auto a = characterize_all_detffs(serial);
  auto b = characterize_all_detffs(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    // Bitwise equality: each index runs an identical, self-contained
    // testbench regardless of which worker executes it.
    EXPECT_EQ(a[i].energy_j, b[i].energy_j) << detff_name(a[i].kind);
    EXPECT_EQ(a[i].delay_s, b[i].delay_s) << detff_name(a[i].kind);
  }
}

TEST(ParallelSweeps, ClbGatingDeterministicAcrossThreadCounts) {
  DetffBenchOptions serial, parallel;
  serial.n_cycles = parallel.n_cycles = 1;
  serial.n_threads = 1;
  parallel.n_threads = 4;
  auto a = measure_clb_clock_gating(serial);
  auto b = measure_clb_clock_gating(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].n_ffs_on, b[i].n_ffs_on);
    EXPECT_EQ(a[i].single_clock_j, b[i].single_clock_j);
    EXPECT_EQ(a[i].gated_clock_j, b[i].gated_clock_j);
  }
}

TEST(ParallelSweeps, DenseOraclePreservesTable1EnergyOrdering) {
  DetffBenchOptions sparse_opt, dense_opt;
  sparse_opt.n_cycles = dense_opt.n_cycles = 1;
  sparse_opt.n_threads = dense_opt.n_threads = 0;
  dense_opt.solver = spice::MnaSolver::kDense;
  auto s = characterize_all_detffs(sparse_opt);
  auto d = characterize_all_detffs(dense_opt);
  ASSERT_EQ(s.size(), d.size());
  // Rank cells by energy under each backend: the orderings must agree.
  auto order = [](const std::vector<DetffMetrics>& rows) {
    std::vector<std::size_t> idx(rows.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return rows[a].energy_j < rows[b].energy_j;
    });
    return idx;
  };
  EXPECT_EQ(order(s), order(d));
}

}  // namespace
}  // namespace amdrel::cells

namespace amdrel::spice {
namespace {

TransientResult make_trace(std::vector<double> t, std::vector<double> v) {
  TransientResult r;
  r.time = std::move(t);
  r.voltage.push_back({});            // ground
  r.voltage.push_back(std::move(v));  // node 1
  return r;
}

TEST(Crossings, SampleExactlyOnLevelCountsOnce) {
  // 0 → 0.9 (exact) → 1.8: one rising crossing, at the touching sample.
  auto r = make_trace({0, 1, 2}, {0.0, 0.9, 1.8});
  auto ups = r.crossings(NodeId{1}, 0.9, true);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_DOUBLE_EQ(ups[0], 1.0);
  EXPECT_TRUE(r.crossings(NodeId{1}, 0.9, false).empty());
}

TEST(Crossings, TouchAndReturnDoesNotCount) {
  // Rises to exactly the level, then falls back: no crossing either way.
  auto r = make_trace({0, 1, 2}, {0.0, 0.9, 0.0});
  EXPECT_TRUE(r.crossings(NodeId{1}, 0.9, true).empty());
  EXPECT_TRUE(r.crossings(NodeId{1}, 0.9, false).empty());
}

TEST(Crossings, PlateauAtLevelCountsOnceAtFirstTouch) {
  // Sits on the level for several samples before continuing upward.
  auto r = make_trace({0, 1, 2, 3, 4}, {0.0, 0.9, 0.9, 0.9, 1.8});
  auto ups = r.crossings(NodeId{1}, 0.9, true);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_DOUBLE_EQ(ups[0], 1.0);
}

TEST(Crossings, DelayFromFindsExactSampleCrossing) {
  auto r = make_trace({0, 1, 2}, {0.0, 0.9, 1.8});
  EXPECT_DOUBLE_EQ(r.delay_from(0.5, NodeId{1}, 0.9, true), 0.5);
}

TEST(EnergyIntegration, DtSensitivityIsSmall) {
  // Trapezoidal accumulation: halving dt moves the supply energy by well
  // under 1% (the endpoint rectangle rule drifted by O(dt)).
  auto energy_at = [](double dt) {
    Circuit c;
    NodeId vdd = c.node("vdd");
    NodeId in = c.node("in");
    c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
    c.add_vsource("vin", in, kGround,
                  Waveform::pulse(0, 1.8, 1e-9, 50e-12, 50e-12, 1.9e-9,
                                  4e-9));
    NodeId out = c.node("out");
    cells::add_inverter(c, "inv", vdd, in, out, 0.28);
    c.add_capacitor("cl", out, kGround, 10e-15);
    TransientSim sim(c);
    TransientOptions opt;
    opt.t_stop = 4e-9;
    opt.dt = dt;
    opt.record = false;
    return sim.run(opt).energy_from("vdd");
  };
  const double coarse = energy_at(2e-12);
  const double fine = energy_at(1e-12);
  EXPECT_NEAR(coarse, fine, 0.01 * std::fabs(fine));
}

}  // namespace
}  // namespace amdrel::spice

#include <gtest/gtest.h>

#include "bench_gen/bench_gen.hpp"
#include "flow/flow.hpp"
#include "power/power.hpp"
#include "timing/timing.hpp"

namespace amdrel {
namespace {

flow::FlowResult routed_design(int gates, int latches, std::uint64_t seed,
                               arch::ArchSpec spec = {}) {
  bench_gen::BenchSpec bspec;
  bspec.n_inputs = 10;
  bspec.n_outputs = 8;
  bspec.n_gates = gates;
  bspec.n_latches = latches;
  bspec.seed = seed;
  auto net = bench_gen::generate(bspec);
  flow::FlowOptions options;
  options.arch = spec;
  options.verify_mode = flow::VerifyMode::kOff;
  options.search_min_channel_width = true;
  return flow::run_flow_from_network(net, options);
}

TEST(Timing, ElmoreDelayGrowsWithResistance) {
  auto r = routed_design(150, 8, 101);
  arch::ArchSpec slow = r.placement->spec();
  auto base = timing::compute_net_delays(*r.rr_graph, *r.placement,
                                         r.routing, slow);
  slow.r_switch *= 4;
  slow.r_wire_tile *= 4;
  auto slower = timing::compute_net_delays(*r.rr_graph, *r.placement,
                                           r.routing, slow);
  ASSERT_EQ(base.size(), slower.size());
  for (std::size_t ni = 0; ni < base.size(); ++ni) {
    for (const auto& [blk, d] : base[ni].to_block) {
      auto it = slower[ni].to_block.find(blk);
      ASSERT_NE(it, slower[ni].to_block.end());
      EXPECT_GT(it->second, d);
    }
  }
}

TEST(Timing, CriticalPathCoversBlockDelays) {
  auto r = routed_design(200, 16, 102);
  // Critical path must at least include one LUT + FF setup + some routing.
  const auto& spec = r.placement->spec();
  EXPECT_GE(r.timing.critical_path_s,
            spec.t_lut + spec.t_local_mux);
  EXPECT_FALSE(r.timing.critical_path.empty());
}

TEST(Timing, PurelyCombinationalDesignHasIoPath) {
  auto r = routed_design(120, 0, 103);
  // PI→PO path: two pad delays at minimum.
  EXPECT_GE(r.timing.critical_path_s, 2 * r.placement->spec().t_io);
}

TEST(Timing, FasterArchitectureGivesShorterCriticalPath) {
  arch::ArchSpec fast;
  fast.t_lut /= 2;
  fast.t_local_mux /= 2;
  auto slow_design = routed_design(200, 8, 104);
  auto fast_design = routed_design(200, 8, 104, fast);
  EXPECT_LT(fast_design.timing.critical_path_s,
            slow_design.timing.critical_path_s);
}

TEST(Power, HigherActivityMoreDynamicPower) {
  auto r = routed_design(200, 16, 105);
  power::PowerOptions quiet, busy;
  quiet.input_activity = 0.05;
  busy.input_activity = 0.9;
  auto pq = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                  r.routing, r.placement->spec(), quiet);
  auto pb = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                  r.routing, r.placement->spec(), busy);
  EXPECT_GT(pb.logic_w, pq.logic_w);
  EXPECT_GT(pb.routing_w, pq.routing_w);
  EXPECT_DOUBLE_EQ(pb.leakage_w, pq.leakage_w);
}

TEST(Power, GatingDisabledRemovesSavings) {
  auto r = routed_design(200, 24, 106);
  arch::ArchSpec ungated = r.placement->spec();
  ungated.gated_clock_ble = false;
  power::PowerOptions opt;
  opt.input_activity = 0.05;
  auto gated = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                     r.routing, r.placement->spec(), opt);
  auto plain = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                     r.routing, ungated, opt);
  EXPECT_LT(gated.clock_w, plain.clock_w);
  EXPECT_DOUBLE_EQ(plain.clock_w, plain.clock_ungated_w);
}

TEST(Power, DeterministicForSeed) {
  auto r = routed_design(150, 8, 107);
  power::PowerOptions opt;
  auto p1 = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                  r.routing, r.placement->spec(), opt);
  auto p2 = power::estimate_power(*r.packed, *r.placement, *r.rr_graph,
                                  r.routing, r.placement->spec(), opt);
  EXPECT_DOUBLE_EQ(p1.total_w, p2.total_w);
}

TEST(Power, SummaryMentionsAllComponents) {
  auto r = routed_design(120, 8, 108);
  auto s = r.power.summary();
  for (const char* key : {"logic", "routing", "clock", "leakage"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace amdrel

#include <gtest/gtest.h>

#include "arch/arch.hpp"
#include "bench_gen/bench_gen.hpp"
#include "pack/pack.hpp"
#include "synth/lutmap.hpp"
#include "util/error.hpp"

namespace amdrel::pack {
namespace {

using arch::ArchSpec;
using netlist::Network;

Network mapped_bench(int gates, int latches, std::uint64_t seed) {
  bench_gen::BenchSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 8;
  spec.n_gates = gates;
  spec.n_latches = latches;
  spec.seed = seed;
  Network n = bench_gen::generate(spec);
  return synth::map_to_luts(n, synth::LutMapOptions{4, 8});
}

TEST(Arch, Equation1ClusterInputs) {
  ArchSpec spec;
  // Paper Eq. (1): I = (K/2)(N+1) = 2*6 = 12 for K=4, N=5.
  EXPECT_EQ(spec.cluster_inputs(), 12);
  // 17:1 local muxes (12 inputs + 5 feedbacks).
  EXPECT_EQ(spec.local_mux_inputs(), 17);
  spec.k = 6;
  spec.n = 7;
  EXPECT_EQ(spec.cluster_inputs(), 24);
}

TEST(Arch, GridSizing) {
  ArchSpec spec;
  auto g = arch::size_grid(spec, 9, 10);
  EXPECT_GE(g.nx * g.ny, 9);
  EXPECT_GE(4 * g.nx * spec.io_per_tile, 10);
  // IO-dominated design forces a bigger grid.
  auto g2 = arch::size_grid(spec, 1, 100);
  EXPECT_GE(4 * g2.nx * spec.io_per_tile, 100);
}

TEST(Arch, FileRoundTrip) {
  ArchSpec spec;
  spec.k = 5;
  spec.n = 6;
  spec.channel_width = 24;
  spec.fc_in = 0.5;
  spec.switch_width_x = 16;
  ArchSpec back = arch::read_arch_string(arch::write_arch_string(spec));
  EXPECT_EQ(back.k, 5);
  EXPECT_EQ(back.n, 6);
  EXPECT_EQ(back.channel_width, 24);
  EXPECT_DOUBLE_EQ(back.fc_in, 0.5);
  EXPECT_DOUBLE_EQ(back.switch_width_x, 16);
}

TEST(Arch, RejectsBadFile) {
  EXPECT_THROW(arch::read_arch_string("nonsense_key 3\n"), ParseError);
  EXPECT_THROW(arch::read_arch_string("lut_inputs 99\n"), ParseError);
}

TEST(Pack, CombinationalDesign) {
  Network n = mapped_bench(300, 0, 21);
  ArchSpec spec;
  PackedNetlist packed(n, spec);
  packed.validate();
  // All LUTs packed; cluster count near ceil(bles/N).
  int min_clusters =
      (static_cast<int>(packed.bles().size()) + spec.n - 1) / spec.n;
  EXPECT_GE(static_cast<int>(packed.clusters().size()), min_clusters);
  EXPECT_LE(static_cast<int>(packed.clusters().size()),
            3 * min_clusters);  // packing should not explode
}

TEST(Pack, SequentialPairsLutsWithFfs) {
  Network n = mapped_bench(300, 24, 22);
  ArchSpec spec;
  PackedNetlist packed(n, spec);
  packed.validate();
  // Some BLEs should contain both a LUT and a FF.
  int paired = 0;
  for (const auto& b : packed.bles()) {
    if (b.lut_gate >= 0 && b.latch >= 0) ++paired;
  }
  EXPECT_GT(paired, 0);
  EXPECT_EQ(packed.network().latches().size(), 24u);
}

TEST(Pack, Equation1PropertySweep) {
  // Property: for every (K, N) in the paper's exploration range, packing
  // respects I = (K/2)(N+1) and never exceeds N BLEs per cluster.
  for (int k : {3, 4, 5}) {
    for (int n_cluster : {2, 5, 8}) {
      bench_gen::BenchSpec bspec;
      bspec.n_inputs = 12;
      bspec.n_outputs = 8;
      bspec.n_gates = 250;
      bspec.n_latches = 10;
      bspec.seed = static_cast<std::uint64_t>(k * 100 + n_cluster);
      Network base = bench_gen::generate(bspec);
      Network lut = synth::map_to_luts(
          base, synth::LutMapOptions{k, 8});
      ArchSpec spec;
      spec.k = k;
      spec.n = n_cluster;
      PackedNetlist packed(lut, spec);
      packed.validate();  // checks N, I, clock constraints internally
      for (const auto& c : packed.clusters()) {
        EXPECT_LE(static_cast<int>(c.input_signals.size()),
                  spec.cluster_inputs());
        EXPECT_LE(static_cast<int>(c.bles.size()), spec.n);
      }
    }
  }
}

TEST(Pack, NetFileContainsClusters) {
  Network n = mapped_bench(120, 8, 23);
  ArchSpec spec;
  PackedNetlist packed(n, spec);
  std::string text = write_net_string(packed);
  EXPECT_NE(text.find(".clb cluster0"), std::string::npos);
  EXPECT_NE(text.find(".model"), std::string::npos);
}

TEST(Pack, RejectsUnmappedNetwork) {
  // A gate wider than K must be rejected (mapper required first).
  Network n = netlist::Network("wide");
  auto a = n.add_signal("a"), b = n.add_signal("b"), c = n.add_signal("c"),
       d = n.add_signal("d"), e = n.add_signal("e"), y = n.add_signal("y");
  for (auto s : {a, b, c, d, e}) n.add_input(s);
  n.add_gate("y", netlist::TruthTable::and_n(5), {a, b, c, d, e}, y);
  n.add_output(y);
  ArchSpec spec;  // k = 4
  EXPECT_THROW(PackedNetlist(n, spec), Error);
}

}  // namespace
}  // namespace amdrel::pack

// ECO incremental recompilation: diff classification, artifact reuse,
// placement preservation and the formal-equivalence safety net.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "eco/eco.hpp"
#include "flow/session.hpp"
#include "util/error.hpp"
#include "verify/equiv.hpp"

namespace amdrel {
namespace {

netlist::Network small_design(int gates = 160, int latches = 8,
                              std::uint64_t seed = 91) {
  bench_gen::BenchSpec spec;
  spec.n_gates = gates;
  spec.n_latches = latches;
  spec.seed = seed;
  return bench_gen::generate(spec);
}

flow::FlowOptions fast_options() {
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  return opt;
}

TEST(EcoDiff, IdenticalNetworksAreClean) {
  const netlist::Network net = small_design();
  const eco::NetlistDiff d = eco::diff_networks(net, net);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.dirty_cells(), 0);
  EXPECT_FALSE(d.io_changed);
  EXPECT_EQ(d.matched_clean, d.base_cells);
  EXPECT_DOUBLE_EQ(d.dirty_pct(), 0.0);
}

TEST(EcoDiff, ClassifiesRetuneRewireAndAdd) {
  const netlist::Network base = small_design();
  bench_gen::EditSpec edit;
  edit.flips = 2;
  edit.rewires = 1;
  edit.added_luts = 1;
  edit.seed = 7;
  const netlist::Network edited = bench_gen::perturb(base, edit);
  const eco::NetlistDiff d = eco::diff_networks(base, edited);
  EXPECT_FALSE(d.identical());
  EXPECT_FALSE(d.io_changed);
  EXPECT_GE(static_cast<int>(d.retuned.size()), 1);
  // A rewired gate may collide with a flipped one, but the added LUT is
  // always a fresh cell.
  EXPECT_GE(static_cast<int>(d.added.size()), 1);
  EXPECT_TRUE(d.removed.empty());
  EXPECT_GT(d.dirty_pct(), 0.0);
  EXPECT_LT(d.dirty_pct(), 0.1);
}

TEST(EcoDiff, DetectsIoChange) {
  const netlist::Network base = small_design();
  netlist::Network other = base;
  const netlist::SignalId extra = other.add_signal("extra_pi");
  other.add_input(extra);
  const eco::NetlistDiff d = eco::diff_networks(base, other);
  EXPECT_TRUE(d.io_changed);
  EXPECT_FALSE(d.identical());
}

TEST(PerturbEdits, PreserveIoAndValidate) {
  const netlist::Network base = small_design();
  bench_gen::EditSpec edit;
  edit.flips = 3;
  edit.rewires = 2;
  edit.added_luts = 2;
  edit.seed = 3;
  const netlist::Network edited = bench_gen::perturb(base, edit);
  edited.validate();  // throws on structural damage
  EXPECT_EQ(base.inputs().size(), edited.inputs().size());
  EXPECT_EQ(base.outputs().size(), edited.outputs().size());
  EXPECT_EQ(base.latches().size(), edited.latches().size());
  EXPECT_EQ(edited.gates().size(), base.gates().size() + 2);
}

// A truth-table retune leaves the netlist structure intact: the ECO
// compile must reuse the mapping, packing, every block location and
// every route, and still produce a bitstream equivalent to the edit.
TEST(Eco, RetuneReusesEverythingAndVerifies) {
  const netlist::Network base = small_design();
  flow::FlowOptions opt = fast_options();
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);
  // Snapshot the base placement by block name before the ECO replaces it.
  std::vector<std::pair<std::string, place::Loc>> base_locs;
  {
    const place::Placement& pl = *session.result().placement;
    for (std::size_t b = 0; b < pl.blocks().size(); ++b) {
      base_locs.emplace_back(pl.blocks()[b].name,
                             pl.location(static_cast<int>(b)));
    }
  }

  bench_gen::EditSpec edit;
  edit.flips = 2;
  edit.seed = 11;
  const netlist::Network edited = bench_gen::perturb(base, edit);

  eco::EcoStats stats;
  ASSERT_EQ(session.resume_with_edit(edited, &stats),
            flow::SessionState::kDone);
  EXPECT_TRUE(stats.incremental_map);
  EXPECT_GT(stats.luts_reused, 0);
  EXPECT_EQ(stats.clusters_reused, stats.clusters_total);
  EXPECT_TRUE(stats.placement_transferred);
  // Structure unchanged: every block is matched and keeps its location
  // bit-for-bit.
  EXPECT_EQ(stats.blocks_matched, stats.blocks_total);
  const place::Placement& pl = *session.result().placement;
  for (const auto& [name, loc] : base_locs) {
    const int b = pl.block_by_name(name);
    ASSERT_GE(b, 0) << "block " << name << " lost by the ECO";
    EXPECT_TRUE(pl.location(b) == loc) << "block " << name << " moved";
  }
  EXPECT_GT(stats.nets_seeded, 0);
  EXPECT_GT(stats.reuse_ratio(), 0.9);
  EXPECT_EQ(session.result().channel_width, stats.channel_width);

  // The safety net, explicitly: the ECO bitstream implements the edit.
  const netlist::Network fabric =
      bitgen::decode_to_network(session.result().bitstream);
  const verify::EquivResult eq = verify::prove_equivalence(edited, fabric);
  EXPECT_TRUE(eq.equivalent()) << eq.message;
}

// A mixed edit (retune + rewire + added LUTs): the ECO result must be
// formally equivalent to a from-scratch compile of the edited netlist.
TEST(Eco, MixedEditMatchesFromScratchCompile) {
  const netlist::Network base = small_design();
  flow::FlowOptions opt = fast_options();
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  bench_gen::EditSpec edit;
  edit.flips = 1;
  edit.rewires = 1;
  edit.added_luts = 2;
  edit.seed = 23;
  const netlist::Network edited = bench_gen::perturb(base, edit);

  eco::EcoStats stats;
  ASSERT_EQ(session.resume_with_edit(edited, &stats),
            flow::SessionState::kDone);
  EXPECT_TRUE(stats.incremental_map);
  EXPECT_GT(stats.clusters_reused, 0);
  EXPECT_GT(stats.blocks_matched, 0);
  EXPECT_GT(stats.nets_seeded, 0);
  EXPECT_GT(stats.reuse_ratio(), 0.5);

  const flow::FlowResult scratch = flow::run_flow_from_network(edited, opt);
  const netlist::Network eco_fabric =
      bitgen::decode_to_network(session.result().bitstream);
  const netlist::Network scratch_fabric =
      bitgen::decode_to_network(scratch.bitstream);
  const verify::EquivResult eq =
      verify::prove_equivalence(scratch_fabric, eco_fabric);
  EXPECT_TRUE(eq.equivalent()) << eq.message;
}

// resume_with_edit honors the session's verify mode: a formal-mode
// session proves the ECO hand-off internally.
TEST(Eco, FormalModeSessionVerifiesInternally) {
  const netlist::Network base = small_design(120, 4, 55);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kFormal;
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);
  bench_gen::EditSpec edit;
  edit.flips = 1;
  edit.seed = 5;
  eco::EcoStats stats;
  ASSERT_EQ(session.resume_with_edit(bench_gen::perturb(base, edit), &stats),
            flow::SessionState::kDone);
  EXPECT_TRUE(session.eco_metrics().ran);
  EXPECT_GT(session.eco_metrics().counter("verify.formal_checks"), 0u);
  EXPECT_GT(session.eco_metrics().counter("eco.runs"), 0u);
}

// An ECO on a session that was cancelled mid-flow and then resumed works
// exactly like one on an uninterrupted session.
TEST(Eco, WorksAfterCancelledAndResumedSession) {
  const netlist::Network base = small_design();
  flow::FlowOptions opt = fast_options();
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.run_until(flow::Stage::kPlace),
            flow::SessionState::kReady);
  session.cancel();
  EXPECT_EQ(session.resume(), flow::SessionState::kCancelled);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  bench_gen::EditSpec edit;
  edit.flips = 1;
  edit.added_luts = 1;
  edit.seed = 17;
  const netlist::Network edited = bench_gen::perturb(base, edit);
  eco::EcoStats stats;
  ASSERT_EQ(session.resume_with_edit(edited, &stats),
            flow::SessionState::kDone);
  const netlist::Network fabric =
      bitgen::decode_to_network(session.result().bitstream);
  const verify::EquivResult eq = verify::prove_equivalence(edited, fabric);
  EXPECT_TRUE(eq.equivalent()) << eq.message;
}

// A cancel during the ECO leaves the session unchanged (base artifacts
// intact, still kDone) and is consumed.
TEST(Eco, CancelDiscardsTheAttempt) {
  const netlist::Network base = small_design();
  flow::FlowOptions opt = fast_options();
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);
  const std::vector<std::uint8_t> base_bits =
      session.result().bitstream_bytes;

  session.cancel();
  bench_gen::EditSpec edit;
  edit.flips = 1;
  edit.seed = 29;
  EXPECT_EQ(session.resume_with_edit(bench_gen::perturb(base, edit)),
            flow::SessionState::kCancelled);
  EXPECT_EQ(session.state(), flow::SessionState::kDone);
  EXPECT_EQ(session.result().bitstream_bytes, base_bits);
  // The request was consumed: the next attempt runs to completion.
  EXPECT_EQ(session.resume_with_edit(bench_gen::perturb(base, edit)),
            flow::SessionState::kDone);
}

// Edits larger than the dirty-fraction threshold (or with changed IO)
// fall back to a full remap but still complete and verify.
TEST(Eco, OversizedEditFallsBackAndStillVerifies) {
  const netlist::Network base = small_design(80, 0, 13);
  flow::FlowOptions opt = fast_options();
  flow::FlowSession session(base, opt);
  ASSERT_EQ(session.resume(), flow::SessionState::kDone);

  bench_gen::EditSpec edit;
  edit.flips = 70;  // dirties well over half the design
  edit.seed = 31;
  const netlist::Network edited = bench_gen::perturb(base, edit);
  eco::EcoStats stats;
  ASSERT_EQ(session.resume_with_edit(edited, &stats),
            flow::SessionState::kDone);
  EXPECT_FALSE(stats.incremental_map);
  EXPECT_GT(stats.fallbacks, 0);
  const netlist::Network fabric =
      bitgen::decode_to_network(session.result().bitstream);
  const verify::EquivResult eq = verify::prove_equivalence(edited, fabric);
  EXPECT_TRUE(eq.equivalent()) << eq.message;
}

}  // namespace
}  // namespace amdrel

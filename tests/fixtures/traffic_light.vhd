-- The traffic-light controller of examples/traffic_light.cpp as a
-- standalone source: the canonical *clean* design — the lint clean-flow
-- test asserts a full invariant-checked flow over it yields zero
-- diagnostics.
entity traffic is
  port ( clk     : in std_logic;
         rst     : in std_logic;
         request : in std_logic;                      -- pedestrian button
         lights  : out std_logic_vector(2 downto 0)   -- R, Y, G
       );
end traffic;

architecture rtl of traffic is
  signal state : std_logic_vector(1 downto 0);  -- 00 G, 01 Y, 10 R, 11 RY
  signal timer : std_logic_vector(2 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      state <= "00";
      timer <= "000";
    elsif rising_edge(clk) then
      if timer = 0 then
        case state is
          when "00" =>
            if request = '1' then
              state <= "01";
              timer <= "001";
            end if;
          when "01" =>
            state <= "10";
            timer <= "011";
          when "10" =>
            state <= "11";
            timer <= "001";
          when others =>
            state <= "00";
            timer <= "000";
        end case;
      else
        timer <= timer - 1;
      end if;
    end if;
  end process;

  with state select
    lights <= "001" when "00",   -- green
              "010" when "01",   -- yellow
              "100" when "10",   -- red
              "110" when others; -- red+yellow
end rtl;

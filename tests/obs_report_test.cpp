#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "bench_gen/bench_gen.hpp"
#include "flow/session.hpp"
#include "json_check.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_valid;

TEST(TraceParse, ParsesSpanEndWithMetrics) {
  obs::TraceEvent e;
  ASSERT_TRUE(obs::parse_trace_line(
      R"({"type":"span","name":"flow.route","t":1.5,"dur":0.25,)"
      R"("metrics":{"channel_width":12,"wire_nodes":340}})",
      &e));
  EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kEnd);
  EXPECT_EQ(e.name, "flow.route");
  EXPECT_DOUBLE_EQ(e.t_s, 1.5);
  EXPECT_DOUBLE_EQ(e.dur_s, 0.25);
  ASSERT_EQ(e.metrics.size(), 2u);
  EXPECT_EQ(e.metrics[0].first, "channel_width");
  EXPECT_DOUBLE_EQ(e.metrics[0].second, 12.0);
}

TEST(TraceParse, ParsesBeginAndPoint) {
  obs::TraceEvent e;
  ASSERT_TRUE(obs::parse_trace_line(
      R"({"type":"begin","name":"place.anneal","t":0.5})", &e));
  EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kBegin);
  ASSERT_TRUE(obs::parse_trace_line(
      R"({"type":"point","name":"route.minw_probe","t":2})", &e));
  EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kPoint);
  EXPECT_EQ(e.name, "route.minw_probe");
}

TEST(TraceParse, ParsesIdParentAndTrace) {
  obs::TraceEvent e;
  ASSERT_TRUE(obs::parse_trace_line(
      R"({"type":"begin","name":"flow.map","t":0.5,"id":7,"parent":3,)"
      R"("trace":"job-12"})",
      &e));
  EXPECT_EQ(e.id, 7u);
  EXPECT_EQ(e.parent, 3u);
  EXPECT_EQ(e.trace, "job-12");
  // All three are optional (traces from older builds omit them).
  ASSERT_TRUE(obs::parse_trace_line(
      R"({"type":"begin","name":"flow.map","t":0.5})", &e));
  EXPECT_EQ(e.id, 0u);
  EXPECT_EQ(e.parent, 0u);
  EXPECT_TRUE(e.trace.empty());
  // Negative ids are malformed, not silently wrapped.
  EXPECT_FALSE(obs::parse_trace_line(
      R"({"type":"begin","name":"x","t":0,"id":-3})", &e));
}

TEST(TraceParse, RejectsGarbageAndTruncation) {
  obs::TraceEvent e;
  EXPECT_FALSE(obs::parse_trace_line("", &e));
  EXPECT_FALSE(obs::parse_trace_line("not json", &e));
  EXPECT_FALSE(obs::parse_trace_line(R"({"type":"span","name":"x)", &e));
  EXPECT_FALSE(obs::parse_trace_line(R"({"type":"wat","name":"x","t":0})",
                                     &e));
  EXPECT_FALSE(obs::parse_trace_line(R"({"name":"x","t":0})", &e));  // no type
  EXPECT_FALSE(obs::parse_trace_line(
      R"({"type":"span","name":"x","t":0 "dur":1})", &e));  // missing comma
}

/// Builds a two-level trace and checks tree shape, aggregates, self time.
TEST(TraceAnalyze, BuildsSpanTreeWithSelfTimes) {
  std::istringstream in(
      R"({"type":"begin","name":"outer","t":0}
{"type":"begin","name":"inner","t":1}
{"type":"span","name":"inner","t":1,"dur":2}
{"type":"point","name":"tick","t":2,"metrics":{"n":3}}
{"type":"span","name":"outer","t":0,"dur":10}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.events, 5u);
  EXPECT_EQ(r.skipped_lines, 0u);
  EXPECT_EQ(r.unmatched_ends, 0u);
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_EQ(r.roots[0].name, "outer");
  ASSERT_EQ(r.roots[0].children.size(), 1u);
  EXPECT_EQ(r.roots[0].children[0].name, "inner");

  const obs::NameAggregate* outer = nullptr;
  const obs::NameAggregate* inner = nullptr;
  const obs::NameAggregate* tick = nullptr;
  for (const auto& a : r.aggregates) {
    if (a.name == "outer") outer = &a;
    if (a.name == "inner") inner = &a;
    if (a.name == "tick") tick = &a;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_DOUBLE_EQ(outer->total_s, 10.0);
  EXPECT_DOUBLE_EQ(outer->self_s, 8.0);  // 10 minus the nested 2
  EXPECT_DOUBLE_EQ(inner->total_s, 2.0);
  EXPECT_DOUBLE_EQ(inner->self_s, 2.0);
  EXPECT_FALSE(tick->is_span);
  EXPECT_EQ(tick->count, 1u);
  EXPECT_DOUBLE_EQ(tick->metric_sums.at("n"), 3.0);
  // Aggregates come sorted by total time, so "outer" leads.
  EXPECT_EQ(r.aggregates.front().name, "outer");
}

TEST(TraceAnalyze, ToleratesCrashTruncatedTraces) {
  // The trace ends mid-flow: "outer" never closes and the last line is
  // torn. Completed children must still be reported.
  std::istringstream in(
      R"({"type":"begin","name":"outer","t":0}
{"type":"begin","name":"inner","t":1}
{"type":"span","name":"inner","t":1,"dur":2}
{"type":"begin","name":"torn","t":3}
{"type":"span","name":"torn","t":3,"du)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.skipped_lines, 1u);  // the torn final line
  // inner completed under the never-closed outer and got promoted.
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_EQ(r.roots[0].name, "inner");
}

TEST(TraceAnalyze, CountsUnmatchedEnds) {
  std::istringstream in(
      R"({"type":"span","name":"orphan","t":1,"dur":1}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.unmatched_ends, 1u);
  EXPECT_TRUE(r.roots.empty());
}

TEST(TraceAnalyze, PairsConcurrentSameNameSpansNearestFirst) {
  // Two interleaved "probe" spans (no thread ids in the stream): each end
  // closes the nearest open span with that name, so both complete.
  std::istringstream in(
      R"({"type":"begin","name":"probe","t":0}
{"type":"begin","name":"probe","t":1}
{"type":"span","name":"probe","t":1,"dur":1}
{"type":"span","name":"probe","t":0,"dur":3}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.unmatched_ends, 0u);
  const obs::NameAggregate& a = r.aggregates.front();
  EXPECT_EQ(a.name, "probe");
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.total_s, 4.0);
}

/// The daemon's per-job traces interleave on one timeline when
/// concatenated. With span ids, each end closes exactly its own begin and
/// each child attaches to its actual parent — same-name spans from other
/// jobs in between cannot confuse the pairing.
TEST(TraceAnalyze, IdPairingReconstructsInterleavedJobTrees) {
  std::istringstream in(
      R"({"type":"begin","name":"serve.job","t":0,"id":1,"trace":"job-1"}
{"type":"begin","name":"serve.job","t":0.05,"id":2,"trace":"job-2"}
{"type":"begin","name":"flow.synth","t":0.1,"id":3,"parent":1,"trace":"job-1"}
{"type":"begin","name":"flow.synth","t":0.15,"id":4,"parent":2,"trace":"job-2"}
{"type":"span","name":"flow.synth","t":0.1,"dur":0.2,"id":3,"parent":1,"trace":"job-1"}
{"type":"begin","name":"flow.map","t":0.35,"id":5,"parent":1,"trace":"job-1"}
{"type":"span","name":"flow.synth","t":0.15,"dur":0.4,"id":4,"parent":2,"trace":"job-2"}
{"type":"span","name":"flow.map","t":0.35,"dur":0.1,"id":5,"parent":1,"trace":"job-1"}
{"type":"span","name":"serve.job","t":0,"dur":1,"id":1,"trace":"job-1"}
{"type":"span","name":"serve.job","t":0.05,"dur":2,"id":2,"trace":"job-2"}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.unmatched_ends, 0u);
  EXPECT_EQ(r.skipped_lines, 0u);
  EXPECT_EQ(r.traces, 2u);
  ASSERT_EQ(r.roots.size(), 2u);
  // job-1's root completes first (dur 1 vs 2).
  EXPECT_EQ(r.roots[0].trace, "job-1");
  EXPECT_EQ(r.roots[0].id, 1u);
  ASSERT_EQ(r.roots[0].children.size(), 2u);
  EXPECT_EQ(r.roots[0].children[0].name, "flow.synth");
  EXPECT_DOUBLE_EQ(r.roots[0].children[0].dur_s, 0.2);
  EXPECT_EQ(r.roots[0].children[1].name, "flow.map");
  EXPECT_EQ(r.roots[1].trace, "job-2");
  ASSERT_EQ(r.roots[1].children.size(), 1u);
  EXPECT_EQ(r.roots[1].children[0].name, "flow.synth");
  EXPECT_DOUBLE_EQ(r.roots[1].children[0].dur_s, 0.4);
  // With the old nearest-open-name pairing, job-2's flow.synth end (the
  // 7th line) would have closed job-1's still-open flow.map — the
  // per-name aggregate would smear 0.4s onto the wrong job. Check the
  // aggregate instead reports both synths under one name, both correct.
  for (const auto& a : r.aggregates) {
    if (a.name == "flow.synth") {
      EXPECT_EQ(a.count, 2u);
      EXPECT_DOUBLE_EQ(a.total_s, 0.6);
    }
  }
  // The rendering mentions the multi-trace nature.
  EXPECT_NE(r.to_text().find("distinct trace id"), std::string::npos);
  EXPECT_NE(r.to_json().find("\"traces\":2"), std::string::npos);
}

TEST(TraceAnalyze, IdCrashTailPromotesCompletedChildren) {
  // The job root (id 1) and flow.map (id 5) never close — daemon killed —
  // but flow.synth completed. The drain promotes it as a root.
  std::istringstream in(
      R"({"type":"begin","name":"serve.job","t":0,"id":1,"trace":"job-1"}
{"type":"begin","name":"flow.synth","t":0.1,"id":3,"parent":1,"trace":"job-1"}
{"type":"span","name":"flow.synth","t":0.1,"dur":0.2,"id":3,"parent":1,"trace":"job-1"}
{"type":"begin","name":"flow.map","t":0.35,"id":5,"parent":1,"trace":"job-1"}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.traces, 1u);
  ASSERT_EQ(r.roots.size(), 1u);
  EXPECT_EQ(r.roots[0].name, "flow.synth");
}

TEST(TraceAnalyze, ExtractsFlowQorFromStageSpans) {
  std::istringstream in(
      R"({"type":"begin","name":"flow.route","t":0}
{"type":"span","name":"flow.route","t":0,"dur":2,"metrics":{"channel_width":12,"wire_nodes":340}}
{"type":"begin","name":"flow.power","t":2}
{"type":"span","name":"flow.power","t":2,"dur":1,"metrics":{"critical_path_ns":8.5,"power_mw":1.25}}
{"type":"begin","name":"flow.bitgen","t":3}
{"type":"span","name":"flow.bitgen","t":3,"dur":1,"metrics":{"bitstream_bytes":2184,"config_bits":920}}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  EXPECT_EQ(r.qor.flows, 1u);
  EXPECT_DOUBLE_EQ(r.qor.channel_width_max, 12.0);
  EXPECT_DOUBLE_EQ(r.qor.wire_nodes, 340.0);
  EXPECT_DOUBLE_EQ(r.qor.critical_path_ns_max, 8.5);
  EXPECT_DOUBLE_EQ(r.qor.power_mw, 1.25);
  EXPECT_DOUBLE_EQ(r.qor.bitstream_bytes, 2184.0);
  EXPECT_DOUBLE_EQ(r.qor.config_bits, 920.0);
  EXPECT_DOUBLE_EQ(r.qor.total_wall_s, 4.0);
  EXPECT_EQ(r.qor.stages.at("route").runs, 1u);
  EXPECT_DOUBLE_EQ(r.qor.stages.at("route").wall_s, 2.0);
}

TEST(TraceAnalyze, TextAndJsonRendering) {
  std::istringstream in(
      R"({"type":"begin","name":"flow.bitgen","t":0}
{"type":"span","name":"flow.bitgen","t":0,"dur":1,"metrics":{"bitstream_bytes":10}}
)");
  const obs::TraceReport r = obs::analyze_trace(in);
  const std::string text = r.to_text();
  EXPECT_NE(text.find("flow.bitgen"), std::string::npos);
  EXPECT_NE(text.find("flow QoR summary"), std::string::npos);
  const std::string json = r.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"flow_qor\""), std::string::npos);
}

TEST(TraceAnalyze, FileVariantThrowsOnMissingFile) {
  EXPECT_THROW(obs::analyze_trace_file("/nonexistent-dir/trace.jsonl"),
               Error);
}

/// End-to-end cross-check: trace a real flow and verify the analyzer's
/// per-stage wall times agree with the session's own StageMetrics. The
/// session pins the span to the same clock readings it uses for wall_s
/// (Span's explicit-start constructor plus freeze_duration), so the two
/// agree to JSONL print precision (%.9g) even on a loaded machine.
TEST(TraceAnalyze, StageWallsMatchSessionStageMetrics) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 120;
  spec.n_latches = 8;
  spec.seed = 78;
  const auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;

  const std::string path = ::testing::TempDir() + "/report_cross.jsonl";
  flow::FlowResult result;
  {
    obs::ScopedSink guard(std::make_unique<obs::JsonlSink>(path));
    flow::FlowSession session(net, opt);
    session.resume();
    result = session.take_result();
  }
  const obs::TraceReport r = obs::analyze_trace_file(path);
  EXPECT_EQ(r.qor.flows, 1u);
  for (int s = 0; s < flow::kNumStages; ++s) {
    const auto stage = static_cast<flow::Stage>(s);
    const flow::StageMetrics& m = result.metrics(stage);
    ASSERT_TRUE(m.ran);
    auto it = r.qor.stages.find(flow::stage_name(stage));
    ASSERT_NE(it, r.qor.stages.end()) << flow::stage_name(stage);
    EXPECT_EQ(it->second.runs, 1u);
    const double diff = std::abs(it->second.wall_s - m.wall_s);
    EXPECT_LE(diff, std::max(1e-6 * m.wall_s, 1e-9))
        << flow::stage_name(stage) << ": span " << it->second.wall_s
        << "s vs StageMetrics " << m.wall_s << "s";
  }
  // The QoR summary reproduces the flow result's headline numbers.
  EXPECT_DOUBLE_EQ(r.qor.channel_width_max, result.channel_width);
  EXPECT_DOUBLE_EQ(r.qor.luts, result.map_stats.luts);
  EXPECT_DOUBLE_EQ(
      r.qor.clbs, static_cast<double>(result.packed->clusters().size()));
  EXPECT_DOUBLE_EQ(r.qor.bitstream_bytes,
                   static_cast<double>(result.bitstream_bytes.size()));
  std::remove(path.c_str());
}

/// Each flow stage attributes at least one registry counter delta.
TEST(StageCounters, EveryStageRecordsCounterDeltas) {
  bench_gen::BenchSpec spec;
  spec.n_gates = 120;
  spec.n_latches = 8;
  spec.seed = 78;
  const auto net = bench_gen::generate(spec);
  flow::FlowOptions opt;
  opt.verify_mode = flow::VerifyMode::kOff;
  flow::FlowSession session(net, opt);
  session.resume();
  const flow::FlowResult& result = session.result();

  EXPECT_GE(result.metrics(flow::Stage::kSynth).counter("synth.gates"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kMap).counter("map.cut_enumerations"),
            1u);
  EXPECT_GE(result.metrics(flow::Stage::kMap).counter("map.luts"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kPack).counter("pack.bles"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kPack).counter("pack.clusters"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kPlace).counter("place.moves"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kRoute).counter("route.iterations"),
            1u);
  EXPECT_GE(
      result.metrics(flow::Stage::kPower).counter("power.integration_steps"),
      1u);
  EXPECT_GE(result.metrics(flow::Stage::kPower).counter("timing.arcs"), 1u);
  EXPECT_GE(result.metrics(flow::Stage::kBitgen).counter("bitgen.bytes"), 1u);
  // Deltas are attributed to the stage that did the work, not smeared:
  // the pack stage runs no placement moves.
  EXPECT_EQ(result.metrics(flow::Stage::kPack).counter("place.moves"), 0u);
}

}  // namespace
}  // namespace amdrel

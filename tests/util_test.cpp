#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace amdrel {
namespace {

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(AMDREL_CHECK(1 == 2), Error);
  EXPECT_NO_THROW(AMDREL_CHECK(1 == 1));
  try {
    AMDREL_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}

TEST(Error, ParseErrorCarriesLocation) {
  ParseError e("foo.vhd", 42, "bad token");
  EXPECT_EQ(e.file(), "foo.vhd");
  EXPECT_EQ(e.line(), 42);
  EXPECT_NE(std::string(e.what()).find("foo.vhd:42"), std::string::npos);
}

TEST(Json, ParseAndDumpRoundTrip) {
  const std::string text =
      "{\"a\":1,\"b\":[true,false,null],\"c\":{\"nested\":\"s\\n\"},"
      "\"d\":-2.5}";
  const util::Json v = util::parse_json(text);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_TRUE(v.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("b").as_array()[2].is_null());
  EXPECT_EQ(v.at("c").at("nested").as_string(), "s\n");
  EXPECT_EQ(v.at("d").as_number(), -2.5);
  // Insertion order survives the round trip byte-for-byte.
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(util::parse_json(v.dump()).dump(), text);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const util::Json v = util::parse_json("\"\\u00e9\\u20ac\"");
  EXPECT_EQ(v.as_string(), "\xc3\xa9\xe2\x82\xac");  // é €
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(util::parse_json(""), Error);
  EXPECT_THROW(util::parse_json("{"), Error);
  EXPECT_THROW(util::parse_json("{\"a\":}"), Error);
  EXPECT_THROW(util::parse_json("[1,]"), Error);
  EXPECT_THROW(util::parse_json("nul"), Error);
  EXPECT_THROW(util::parse_json("\"unterminated"), Error);
  EXPECT_THROW(util::parse_json("{} trailing"), Error);
}

TEST(Json, CheckedAccessorsRejectMismatches) {
  const util::Json v = util::parse_json("{\"n\":1.5,\"s\":\"x\"}");
  EXPECT_THROW(v.at("n").as_string(), Error);
  EXPECT_THROW(v.at("n").as_int(), Error);  // 1.5 is not integral
  EXPECT_THROW(v.at("s").as_number(), Error);
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Strings, SplitWs) {
  auto t = split_ws("  a\tbb  ccc \n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitCharKeepsEmpties) {
  auto t = split_char("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
}

TEST(Strings, PrefixSuffixIequals) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(iequals("ENTITY", "entity"));
  EXPECT_FALSE(iequals("entity", "entit"));
}

TEST(Strings, Printf) {
  EXPECT_EQ(strprintf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "22.75"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.75"), std::string::npos);
  // Numeric column right-aligned: "  1.5" has leading spaces.
  EXPECT_NE(s.find("  1.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw Error("boom");
                   }),
               Error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace amdrel

#pragma once
// Minimal JSON syntax checker for the trace/bench tests: validates one
// complete JSON value (recursive descent over the RFC 8259 grammar, minus
// \u escapes beyond hex-digit checking) and extracts flat fields by key.
// Not a general parser — just enough to prove the emitters write JSON a
// real parser would accept.

#include <cctype>
#include <optional>
#include <string>

namespace amdrel::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    i_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') { ++i_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[i_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++i_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++i_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      if (!digits()) return false;
    }
    return i_ > start;
  }
  bool digits() {
    const std::size_t start = i_;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  std::string s_;
  std::size_t i_ = 0;
};

inline bool json_valid(const std::string& text) {
  return JsonChecker(text).valid();
}

/// Textual extraction of a flat `"key":<string|token>` field (the trace
/// and bench schemas never nest a key inside a string value).
inline std::optional<std::string> json_field(const std::string& text,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  if (i < text.size() && text[i] == '"') {
    const std::size_t end = text.find('"', i + 1);
    if (end == std::string::npos) return std::nullopt;
    return text.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != ']') {
    ++end;
  }
  return text.substr(i, end - i);
}

}  // namespace amdrel::testing

#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/edif.hpp"
#include "netlist/network.hpp"
#include "netlist/simulate.hpp"
#include "netlist/truth_table.hpp"
#include "util/error.hpp"

namespace amdrel::netlist {
namespace {

TEST(TruthTable, BasicGates) {
  auto inv = TruthTable::inverter();
  EXPECT_TRUE(inv.get(0));
  EXPECT_FALSE(inv.get(1));

  auto and2 = TruthTable::and_n(2);
  EXPECT_FALSE(and2.get(0));
  EXPECT_FALSE(and2.get(1));
  EXPECT_FALSE(and2.get(2));
  EXPECT_TRUE(and2.get(3));

  auto xor3 = TruthTable::xor_n(3);
  for (std::uint64_t row = 0; row < 8; ++row) {
    EXPECT_EQ(xor3.get(row), (__builtin_popcountll(row) & 1) != 0);
  }

  auto mux = TruthTable::mux2();
  // (sel, a, b): sel=0 → a.
  EXPECT_FALSE(mux.get(0b000));
  EXPECT_TRUE(mux.get(0b010));   // a=1, sel=0
  EXPECT_FALSE(mux.get(0b010 | 1) /*sel=1,a=1,b=0*/);
  EXPECT_TRUE(mux.get(0b101));   // sel=1, b=1
}

TEST(TruthTable, ConstantsAndDependence) {
  auto c1 = TruthTable::constant(true);
  EXPECT_TRUE(c1.is_constant());
  EXPECT_TRUE(c1.constant_value());

  auto and2 = TruthTable::and_n(2);
  EXPECT_FALSE(and2.is_constant());
  EXPECT_TRUE(and2.depends_on(0));
  EXPECT_TRUE(and2.depends_on(1));

  // Table that ignores input 1: out = in0.
  TruthTable t(2);
  for (std::uint64_t row = 0; row < 4; ++row) t.set(row, row & 1);
  EXPECT_TRUE(t.depends_on(0));
  EXPECT_FALSE(t.depends_on(1));
}

TEST(TruthTable, Cofactor) {
  auto and2 = TruthTable::and_n(2);
  auto c0 = and2.cofactor(0, false);  // in0=0 → constant 0
  EXPECT_TRUE(c0.is_constant());
  EXPECT_FALSE(c0.constant_value());
  auto c1 = and2.cofactor(0, true);  // in0=1 → identity(in1)
  EXPECT_EQ(c1, TruthTable::identity());
}

TEST(TruthTable, PermuteAndInvert) {
  // out = in0 & !in1
  TruthTable t(2);
  t.set(0b01, true);
  auto p = t.permute({1, 0});  // swap inputs: out = in1 & !in0
  EXPECT_TRUE(p.get(0b10));
  EXPECT_FALSE(p.get(0b01));
  auto inv = t.invert();
  for (std::uint64_t row = 0; row < 4; ++row) {
    EXPECT_EQ(inv.get(row), !t.get(row));
  }
}

TEST(TruthTable, WideTables) {
  TruthTable t(10);
  EXPECT_EQ(t.n_rows(), 1024u);
  t.set(1023, true);
  EXPECT_TRUE(t.get(1023));
  EXPECT_FALSE(t.get(0));
  EXPECT_FALSE(t.is_constant());
}

TEST(Network, BuildAndValidate) {
  Network n("test");
  SignalId a = n.add_signal("a");
  SignalId b = n.add_signal("b");
  SignalId y = n.add_signal("y");
  n.add_input(a);
  n.add_input(b);
  n.add_gate("y", TruthTable::and_n(2), {a, b}, y);
  n.add_output(y);
  EXPECT_NO_THROW(n.validate());
  EXPECT_EQ(n.topo_order().size(), 1u);
}

TEST(Network, DetectsCombinationalCycle) {
  Network n("loop");
  SignalId a = n.add_signal("a");
  SignalId b = n.add_signal("b");
  n.add_gate("g1", TruthTable::inverter(), {a}, b);
  n.add_gate("g2", TruthTable::inverter(), {b}, a);
  EXPECT_THROW(n.topo_order(), InfeasibleError);
}

TEST(Network, DetectsDoubleDriver) {
  Network n("dd");
  SignalId a = n.add_signal("a");
  SignalId y = n.add_signal("y");
  n.add_input(a);
  n.add_gate("g1", TruthTable::inverter(), {a}, y);
  n.add_gate("g2", TruthTable::identity(), {a}, y);
  EXPECT_THROW(n.validate(), Error);
}

const char* kCounterBlif = R"(
# 2-bit counter with enable
.model counter2
.inputs en
.outputs q0 q1
.latch d0 q0 re clk 0
.latch d1 q1 re clk 0
.names en q0 d0
01 1
10 1
.names en q0 q1 d1
001 1
011 1
101 1
110 1
.names clk
0
.end
)";

TEST(Blif, ParsesCounter) {
  Network n = read_blif_string(kCounterBlif);
  EXPECT_EQ(n.name(), "counter2");
  EXPECT_EQ(n.inputs().size(), 1u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.latches().size(), 2u);
  EXPECT_EQ(n.gates().size(), 3u);
  n.validate();
}

TEST(Blif, RoundTrip) {
  Network n = read_blif_string(kCounterBlif);
  std::string text = write_blif_string(n);
  Network n2 = read_blif_string(text);
  auto r = check_equivalence(n, n2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Blif, CubesWithDontCares) {
  Network n = read_blif_string(R"(
.model dc
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
)");
  const auto& t = n.gates()[0].table;
  // y = a | (b & c)
  for (std::uint64_t row = 0; row < 8; ++row) {
    bool a = row & 1, b = row & 2, c = row & 4;
    EXPECT_EQ(t.get(row), a || (b && c)) << row;
  }
}

TEST(Blif, OffSetCover) {
  Network n = read_blif_string(R"(
.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
)");
  // y = NAND(a,b)
  EXPECT_EQ(n.gates()[0].table, TruthTable::and_n(2, true));
}

TEST(Blif, RejectsMalformed) {
  EXPECT_THROW(read_blif_string(".inputs a\n"), ParseError);
  EXPECT_THROW(read_blif_string(".model x\n01 1\n"), ParseError);
  EXPECT_THROW(read_blif_string(".model x\n.names a y\n2 1\n"), ParseError);
  EXPECT_THROW(
      read_blif_string(".model x\n.inputs a\n.outputs nothere\n.end\n"),
      ParseError);
}

TEST(Blif, Continuations) {
  Network n = read_blif_string(
      ".model c\n.inputs \\\na b\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(Simulator, CounterCounts) {
  Network n = read_blif_string(kCounterBlif);
  Simulator sim(n);
  SignalId q0 = n.find_signal("q0"), q1 = n.find_signal("q1");
  sim.set_input_by_name("en", true);
  int expected = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    sim.propagate();
    EXPECT_EQ(sim.value(q0), (expected & 1) != 0) << cycle;
    EXPECT_EQ(sim.value(q1), (expected & 2) != 0) << cycle;
    sim.step_clock();
    expected = (expected + 1) & 3;
  }
  // With enable low the counter freezes.
  sim.set_input_by_name("en", false);
  sim.propagate();
  bool f0 = sim.value(q0), f1 = sim.value(q1);
  sim.step_clock();
  sim.propagate();
  EXPECT_EQ(sim.value(q0), f0);
  EXPECT_EQ(sim.value(q1), f1);
}

TEST(Simulator, ToggleCountsAccumulate) {
  Network n = read_blif_string(kCounterBlif);
  Simulator sim(n);
  sim.set_input_by_name("en", true);
  for (int i = 0; i < 16; ++i) {
    sim.propagate();
    sim.step_clock();
  }
  SignalId q0 = n.find_signal("q0");
  SignalId q1 = n.find_signal("q1");
  // q0 toggles every cycle, q1 every other.
  EXPECT_GT(sim.toggle_counts()[static_cast<std::size_t>(q0)],
            sim.toggle_counts()[static_cast<std::size_t>(q1)]);
}

TEST(Equivalence, DetectsDifference) {
  Network a = read_blif_string(
      ".model m\n.inputs x y\n.outputs z\n.names x y z\n11 1\n.end\n");
  Network b = read_blif_string(
      ".model m\n.inputs x y\n.outputs z\n.names x y z\n1- 1\n.end\n");
  auto r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.message.empty());
}

TEST(Equivalence, NameSetMismatch) {
  Network a = read_blif_string(
      ".model m\n.inputs x\n.outputs z\n.names x z\n1 1\n.end\n");
  Network b = read_blif_string(
      ".model m\n.inputs w\n.outputs z\n.names w z\n1 1\n.end\n");
  auto r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
}

TEST(Edif, RoundTripCombinational) {
  Network n = read_blif_string(R"(
.model comb
.inputs a b c
.outputs y z
.names a b t
11 1
.names t c y
10 1
01 1
.names a c z
00 1
.end
)");
  std::string edif = write_edif_string(n);
  EXPECT_NE(edif.find("(edifVersion 2 0 0)"), std::string::npos);
  Network n2 = read_edif_string(edif);
  auto r = check_equivalence(n, n2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Edif, RoundTripSequential) {
  Network n = read_blif_string(kCounterBlif);
  std::string edif = write_edif_string(n);
  Network n2 = read_edif_string(edif);
  auto r = check_equivalence(n, n2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Edif, RejectsGarbage) {
  EXPECT_THROW(read_edif_string("(hello world)"), ParseError);
  EXPECT_THROW(read_edif_string("((("), ParseError);
}

TEST(Edif, LutCellsCarryTruthTables) {
  // A 4-input gate that is no standard cell must round-trip via the
  // truth property.
  Network n("lut");
  SignalId a = n.add_signal("a"), b = n.add_signal("b"),
           c = n.add_signal("c"), d = n.add_signal("d"),
           y = n.add_signal("y");
  for (SignalId s : {a, b, c, d}) n.add_input(s);
  TruthTable t(4);
  t.set(0b0110, true);
  t.set(0b1001, true);
  t.set(0b1111, true);
  n.add_gate("y", t, {a, b, c, d}, y);
  n.add_output(y);
  Network n2 = read_edif_string(write_edif_string(n));
  auto r = check_equivalence(n, n2);
  EXPECT_TRUE(r.equivalent) << r.message;
}

}  // namespace
}  // namespace amdrel::netlist

#include <gtest/gtest.h>

#include "cells/characterize.hpp"
#include "cells/detff.hpp"
#include "cells/lut.hpp"
#include "cells/primitives.hpp"
#include "cells/routing_expt.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace amdrel::cells {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::TransientOptions;
using spice::TransientSim;
using spice::Waveform;

[[maybe_unused]] const process::Tech018& tech() {
  return process::default_tech();
}

TEST(Primitives, Nand2TruthTable) {
  // Check all four input combinations at DC-ish settling.
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      Circuit c;
      NodeId vdd = c.node("vdd");
      c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
      NodeId na = c.node("a"), nb = c.node("b"), out = c.node("out");
      c.add_vsource("va", na, kGround, Waveform::dc(a ? 1.8 : 0.0));
      c.add_vsource("vb", nb, kGround, Waveform::dc(b ? 1.8 : 0.0));
      add_nand2(c, "g", vdd, na, nb, out, 0.28);
      c.add_capacitor("cl", out, kGround, 5e-15);
      TransientSim sim(c);
      TransientOptions opt;
      opt.t_stop = 2e-9;
      opt.dt = 2e-12;
      auto res = sim.run(opt);
      double v = res.v(out, res.time.size() - 1);
      if (a && b) {
        EXPECT_LT(v, 0.1) << "a=" << a << " b=" << b;
      } else {
        EXPECT_GT(v, 1.7) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Primitives, TgatePassesBothLevels) {
  for (double vin : {0.0, 1.8}) {
    Circuit c;
    NodeId vdd = c.node("vdd");
    c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
    NodeId in = c.node("in"), out = c.node("out");
    NodeId en = c.node("en"), enb = c.node("enb");
    c.add_vsource("vin", in, kGround, Waveform::dc(vin));
    c.add_vsource("ven", en, kGround, Waveform::dc(1.8));
    c.add_vsource("venb", enb, kGround, Waveform::dc(0.0));
    add_tgate(c, "tg", in, out, en, enb, 0.28);
    c.add_capacitor("cl", out, kGround, 5e-15);
    TransientSim sim(c);
    TransientOptions opt;
    opt.t_stop = 4e-9;
    opt.dt = 2e-12;
    auto res = sim.run(opt);
    // Full rail on both levels (unlike an NMOS-only pass transistor).
    EXPECT_NEAR(res.v(out, res.time.size() - 1), vin, 0.05);
  }
}

TEST(Primitives, TriStateFloatsWhenDisabled) {
  for (auto type :
       {TriStateType::kClockedAtOutput, TriStateType::kClockedAtRails}) {
    Circuit c;
    NodeId vdd = c.node("vdd");
    c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
    NodeId in = c.node("in"), out = c.node("out");
    NodeId en = c.node("en"), enb = c.node("enb");
    c.add_vsource("vin", in, kGround, Waveform::dc(0.0));
    c.add_vsource("ven", en, kGround, Waveform::dc(0.0));   // disabled
    c.add_vsource("venb", enb, kGround, Waveform::dc(1.8));
    add_tristate_inverter(c, "ts", vdd, in, out, en, enb, type, 0.28);
    // Precharge out low via a resistor to a source, check it stays low even
    // though in=0 would drive it high if enabled.
    c.add_capacitor("cl", out, kGround, 5e-15);
    TransientSim sim(c);
    TransientOptions opt;
    opt.t_stop = 4e-9;
    opt.dt = 2e-12;
    auto res = sim.run(opt);
    EXPECT_LT(res.v(out, res.time.size() - 1), 0.3);
  }
}

TEST(Primitives, TriStateDrivesWhenEnabled) {
  Circuit c;
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  NodeId in = c.node("in"), out = c.node("out");
  NodeId en = c.node("en"), enb = c.node("enb");
  c.add_vsource("vin", in, kGround, Waveform::dc(0.0));
  c.add_vsource("ven", en, kGround, Waveform::dc(1.8));
  c.add_vsource("venb", enb, kGround, Waveform::dc(0.0));
  add_tristate_inverter(c, "ts", vdd, in, out, en, enb,
                        TriStateType::kClockedAtOutput, 0.28);
  c.add_capacitor("cl", out, kGround, 5e-15);
  TransientSim sim(c);
  TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 2e-12;
  auto res = sim.run(opt);
  EXPECT_GT(res.v(out, res.time.size() - 1), 1.7);  // inverts 0 → 1
}

TEST(Detff, AllVariantsAreFunctional) {
  DetffBenchOptions opt;
  for (DetffKind kind : kAllDetffs) {
    auto m = characterize_detff(kind, opt);
    EXPECT_TRUE(m.functional) << detff_name(kind);
    EXPECT_GT(m.delay_s, 0.0) << detff_name(kind);
    EXPECT_GT(m.energy_j, 0.0) << detff_name(kind);
    EXPECT_GT(m.transistors, 10) << detff_name(kind);
  }
}

TEST(Detff, ClockPinCapPositive) {
  Circuit c;
  NodeId vdd = c.node("vdd");
  c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
  NodeId d = c.node("d"), clk = c.node("clk"), q = c.node("q");
  add_detff(c, "ff", vdd, DetffKind::kLlopis1, d, clk, q);
  double cap = detff_clock_pin_cap(c, "ff", clk);
  EXPECT_GT(cap, 0.1e-15);
  EXPECT_LT(cap, 50e-15);
}

TEST(Lut, ImplementsTruthTable) {
  // 2-input AND in a 4-LUT (inputs 2,3 tied low): tt bit pattern for
  // out = in0 & in1 → bits where (i&3)==3.
  std::uint32_t tt = 0;
  for (int i = 0; i < 16; ++i)
    if ((i & 3) == 3) tt |= 1u << i;

  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      Circuit c;
      NodeId vdd = c.node("vdd");
      c.add_vsource("vdd", vdd, kGround, Waveform::dc(1.8));
      auto lut = add_lut(c, "lut", vdd, 4, tt);
      c.add_vsource("v0", lut.inputs[0], kGround, Waveform::dc(a ? 1.8 : 0));
      c.add_vsource("v1", lut.inputs[1], kGround, Waveform::dc(b ? 1.8 : 0));
      c.add_vsource("v2", lut.inputs[2], kGround, Waveform::dc(0));
      c.add_vsource("v3", lut.inputs[3], kGround, Waveform::dc(0));
      c.add_capacitor("cl", lut.out, kGround, 5e-15);
      TransientSim sim(c);
      TransientOptions opt;
      opt.t_stop = 3e-9;
      opt.dt = 2e-12;
      auto res = sim.run(opt);
      double v = res.v(lut.out, res.time.size() - 1);
      if (a && b) {
        EXPECT_GT(v, 1.6) << a << b;
      } else {
        EXPECT_LT(v, 0.2) << a << b;
      }
    }
  }
}

TEST(Lut, CharacterizationSane) {
  auto m = characterize_lut4();
  EXPECT_GT(m.delay_s, 10e-12);
  EXPECT_LT(m.delay_s, 2e-9);
  EXPECT_GT(m.energy_per_toggle_j, 1e-16);
  EXPECT_LT(m.energy_per_toggle_j, 1e-12);
  EXPECT_GT(m.input_cap_f, 0.0);
}

TEST(RoutingExpt, ProducesFiniteMetrics) {
  RoutingExptOptions opt;
  opt.wire_length = 1;
  opt.switch_width_x = 10;
  auto r = run_routing_experiment(opt);
  EXPECT_GT(r.delay_s, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.area_um2, 0.0);
  EXPECT_GT(r.eda, 0.0);
}

TEST(RoutingExpt, AreaGrowsWithSwitchWidth) {
  RoutingExptOptions a, b;
  a.switch_width_x = 2;
  b.switch_width_x = 32;
  auto ra = run_routing_experiment(a);
  auto rb = run_routing_experiment(b);
  EXPECT_GT(rb.area_um2, ra.area_um2);
}

TEST(RoutingExpt, TinySwitchIsSlow) {
  // At W=1x the switch resistance dominates: slower than at 10x.
  RoutingExptOptions small, opt10;
  small.switch_width_x = 1;
  opt10.switch_width_x = 10;
  auto rs = run_routing_experiment(small);
  auto r10 = run_routing_experiment(opt10);
  EXPECT_GT(rs.delay_s, r10.delay_s);
}

TEST(RoutingExpt, DoubleSpacingReducesEnergy) {
  RoutingExptOptions a, b;
  a.wire_spacing = process::WireSpacing::kMinimum;
  b.wire_spacing = process::WireSpacing::kDouble;
  auto ra = run_routing_experiment(a);
  auto rb = run_routing_experiment(b);
  EXPECT_LT(rb.energy_j, ra.energy_j);
}

TEST(RoutingExpt, TriStateBufferVariantRuns) {
  RoutingExptOptions opt;
  opt.style = SwitchStyle::kTriStateBuffer;
  opt.wire_length = 2;
  opt.switch_width_x = 4;
  auto r = run_routing_experiment(opt);
  EXPECT_GT(r.delay_s, 0.0);
  EXPECT_GT(r.eda, 0.0);
}

}  // namespace
}  // namespace amdrel::cells

namespace amdrel::cells {
namespace {

// ---- Paper-conclusion regression tests (shapes of Tables 1–3) ----

TEST(PaperShapes, Table1Ordering) {
  auto rows = characterize_all_detffs();
  const DetffMetrics* llopis1 = nullptr;
  const DetffMetrics* chung2 = nullptr;
  double min_e = 1e9, min_edp = 1e9;
  for (const auto& r : rows) {
    ASSERT_TRUE(r.functional) << detff_name(r.kind);
    min_e = std::min(min_e, r.energy_j);
    min_edp = std::min(min_edp, r.edp);
    if (r.kind == DetffKind::kLlopis1) llopis1 = &rows[&r - rows.data()];
    if (r.kind == DetffKind::kChung2) chung2 = &rows[&r - rows.data()];
  }
  ASSERT_NE(llopis1, nullptr);
  ASSERT_NE(chung2, nullptr);
  // The paper's selection criteria: Llopis1 has the lowest total energy
  // (and is chosen); Chung2 has the lowest energy-delay product.
  EXPECT_DOUBLE_EQ(llopis1->energy_j, min_e);
  EXPECT_DOUBLE_EQ(chung2->edp, min_edp);
}

TEST(PaperShapes, Table2BleClockGating) {
  auto e = measure_ble_clock_gating();
  // Gating off saves most of the clock-path energy (paper: −77%).
  EXPECT_LT(e.gated_disabled_j, 0.5 * e.single_clock_j);
  // Gating enabled costs a small overhead (paper: +6.2%).
  EXPECT_GT(e.gated_enabled_j, e.single_clock_j);
  EXPECT_LT(e.gated_enabled_j, 1.5 * e.single_clock_j);
}

TEST(PaperShapes, Table3ClbClockGating) {
  auto rows = measure_clb_clock_gating();
  ASSERT_EQ(rows.size(), 3u);
  // All FFs off: big saving (paper: −83%).
  EXPECT_EQ(rows[0].n_ffs_on, 0);
  EXPECT_LT(rows[0].gated_clock_j, 0.5 * rows[0].single_clock_j);
  // One or more FFs on: gated costs more (paper: +33% / +29%).
  EXPECT_GT(rows[1].gated_clock_j, rows[1].single_clock_j);
  EXPECT_GT(rows[2].gated_clock_j, rows[2].single_clock_j);
  // Single-clock energy grows with active FFs.
  EXPECT_GT(rows[2].single_clock_j, rows[0].single_clock_j);
}

}  // namespace
}  // namespace amdrel::cells

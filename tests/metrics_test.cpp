#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace amdrel {
namespace {

using testing::json_valid;

// The registry is process-global, so every test starts from a clean slate
// explicitly (counters registered by other tests keep existing, but their
// values reset to zero).
class Metrics : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_metrics(); }
};

TEST_F(Metrics, CounterAccumulatesAndSnapshots) {
  static obs::Counter& c = obs::counter("test.counter.basic");
  c.add();
  c.add(41);
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(snap.counter("test.counter.basic"), 42u);
  EXPECT_EQ(snap.counter("test.counter.never-bumped-nor-registered"), 0u);
}

TEST_F(Metrics, CounterLookupReturnsTheSameSlot) {
  obs::Counter& a = obs::counter("test.counter.same");
  obs::Counter& b = obs::counter("test.counter.same");
  EXPECT_EQ(&a, &b);
  a.add(1);
  b.add(2);
  EXPECT_EQ(obs::snapshot_metrics().counter("test.counter.same"), 3u);
}

TEST_F(Metrics, RegisteredButNeverBumpedCounterReportsZero) {
  obs::counter("test.counter.idle");
  const auto snap = obs::snapshot_metrics();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test.counter.idle") {
      found = true;
      EXPECT_EQ(c.value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Metrics, GaugeIsLastWriteWins) {
  static obs::Gauge& g = obs::gauge("test.gauge.w");
  g.set(12.0);
  g.set(15.5);
  const auto snap = obs::snapshot_metrics();
  bool found = false;
  for (const auto& gv : snap.gauges) {
    if (gv.name == "test.gauge.w") {
      found = true;
      EXPECT_DOUBLE_EQ(gv.value, 15.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Metrics, HistogramTracksCountSumMinMaxAndQuantiles) {
  static obs::Histogram& h = obs::histogram("test.hist.basic");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto snap = obs::snapshot_metrics();
  const obs::MetricsSnapshot::HistogramValue* hv = nullptr;
  for (const auto& x : snap.histograms) {
    if (x.name == "test.hist.basic") hv = &x;
  }
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 100u);
  EXPECT_DOUBLE_EQ(hv->sum, 5050.0);
  EXPECT_DOUBLE_EQ(hv->min, 1.0);
  EXPECT_DOUBLE_EQ(hv->max, 100.0);
  // Quantiles interpolate within power-of-two buckets: loose bounds only.
  EXPECT_GE(hv->p50, 1.0);
  EXPECT_LE(hv->p50, 100.0);
  EXPECT_GE(hv->p95, hv->p50);
  EXPECT_LE(hv->p95, 100.0);
}

TEST_F(Metrics, HistogramSingleValueHasTightQuantiles) {
  static obs::Histogram& h = obs::histogram("test.hist.single");
  h.observe(3.25);
  const auto snap = obs::snapshot_metrics();
  for (const auto& x : snap.histograms) {
    if (x.name != "test.hist.single") continue;
    EXPECT_EQ(x.count, 1u);
    // min/max clamp the interpolation, so a 1-sample histogram is exact.
    EXPECT_DOUBLE_EQ(x.p50, 3.25);
    EXPECT_DOUBLE_EQ(x.p95, 3.25);
  }
}

TEST_F(Metrics, HistogramEmptyReportsZeros) {
  obs::histogram("test.hist.empty");  // registered, never observed
  const auto snap = obs::snapshot_metrics();
  bool found = false;
  for (const auto& x : snap.histograms) {
    if (x.name != "test.hist.empty") continue;
    found = true;
    EXPECT_EQ(x.count, 0u);
    EXPECT_DOUBLE_EQ(x.sum, 0.0);
    EXPECT_DOUBLE_EQ(x.min, 0.0);
    EXPECT_DOUBLE_EQ(x.max, 0.0);
    EXPECT_DOUBLE_EQ(x.p50, 0.0);
    EXPECT_DOUBLE_EQ(x.p95, 0.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(Metrics, HistogramQuantilesClampToMinMaxAtBucketBoundaries) {
  // All samples in one power-of-two bucket [2,4): interpolation inside
  // the bucket must never report a quantile outside the observed range.
  static obs::Histogram& h = obs::histogram("test.hist.clamp");
  h.observe(2.0);  // exactly a bucket boundary
  h.observe(3.9);
  h.observe(3.9);
  const auto snap = obs::snapshot_metrics();
  for (const auto& x : snap.histograms) {
    if (x.name != "test.hist.clamp") continue;
    EXPECT_EQ(x.count, 3u);
    EXPECT_GE(x.p50, x.min);
    EXPECT_LE(x.p50, x.max);
    EXPECT_GE(x.p95, x.p50);
    EXPECT_LE(x.p95, x.max);
    EXPECT_DOUBLE_EQ(x.min, 2.0);
    EXPECT_DOUBLE_EQ(x.max, 3.9);
  }
}

TEST_F(Metrics, ResetZeroesEverything) {
  static obs::Counter& c = obs::counter("test.counter.reset");
  static obs::Gauge& g = obs::gauge("test.gauge.reset");
  static obs::Histogram& h = obs::histogram("test.hist.reset");
  c.add(7);
  g.set(1.0);
  h.observe(2.0);
  obs::reset_metrics();
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(snap.counter("test.counter.reset"), 0u);
  for (const auto& gv : snap.gauges) {
    if (gv.name == "test.gauge.reset") {
      EXPECT_DOUBLE_EQ(gv.value, 0.0);
    }
  }
  for (const auto& hv : snap.histograms) {
    if (hv.name == "test.hist.reset") {
      EXPECT_EQ(hv.count, 0u);
    }
  }
}

TEST_F(Metrics, ThreadShardedCountsMergeExactly) {
  static obs::Counter& c = obs::counter("test.counter.mt");
  static obs::Histogram& h = obs::histogram("test.hist.mt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        if (i % 100 == 0) h.observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = obs::snapshot_metrics();
  // Exact, not approximate: each shard has a single writer and parked
  // shards keep their values, so no increment can be lost.
  EXPECT_EQ(snap.counter("test.counter.mt"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (const auto& hv : snap.histograms) {
    if (hv.name == "test.hist.mt") {
      EXPECT_EQ(hv.count, static_cast<std::uint64_t>(kThreads) *
                              (kPerThread / 100));
    }
  }
}

TEST_F(Metrics, SnapshotWhileWritersRunSeesMonotonicValues) {
  static obs::Counter& c = obs::counter("test.counter.racing");
  std::thread writer([] {
    for (int i = 0; i < 50000; ++i) c.add(1);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t now =
        obs::snapshot_metrics().counter("test.counter.racing");
    EXPECT_GE(now, last);  // counts only ever grow
    last = now;
  }
  writer.join();
  EXPECT_EQ(obs::snapshot_metrics().counter("test.counter.racing"), 50000u);
}

TEST_F(Metrics, ToJsonIsValidAndCarriesAllSections) {
  static obs::Counter& c = obs::counter("test.json.counter");
  static obs::Gauge& g = obs::gauge("test.json.gauge");
  static obs::Histogram& h = obs::histogram("test.json.hist");
  c.add(5);
  g.set(2.5);
  h.observe(1.0);
  const std::string json = obs::snapshot_metrics().to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"test.json.counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\":{\"count\":1"), std::string::npos);
}

TEST_F(Metrics, WriteMetricsFileRoundTrips) {
  static obs::Counter& c = obs::counter("test.file.counter");
  c.add(9);
  const std::string path = ::testing::TempDir() + "/metrics_test.json";
  obs::write_metrics_file(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_TRUE(json_valid(body)) << body;
  EXPECT_NE(body.find("\"test.file.counter\":9"), std::string::npos);
  EXPECT_EQ(body.back(), '\n');
  std::remove(path.c_str());
}

TEST_F(Metrics, WriteMetricsFileThrowsOnUnwritablePath) {
  EXPECT_THROW(obs::write_metrics_file("/nonexistent-dir/metrics.json"),
               Error);
}

TEST_F(Metrics, PrometheusExpositionCoversAllMetricTypes) {
  static obs::Counter& c = obs::counter("test.prom.counter");
  static obs::Gauge& g = obs::gauge("test.prom.gauge");
  static obs::Histogram& h = obs::histogram("test.prom.hist");
  c.add(5);
  g.set(2.5);
  h.observe(1.0);
  h.observe(3.0);
  const std::string text = obs::snapshot_metrics().to_prometheus();
  // Names are prefixed and dot-mangled to the Prometheus charset.
  EXPECT_NE(text.find("# TYPE amdrel_test_prom_counter counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("amdrel_test_prom_counter 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amdrel_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("amdrel_test_prom_gauge 2.5"), std::string::npos);
  // Histograms export as summaries: quantile samples plus _sum/_count.
  EXPECT_NE(text.find("# TYPE amdrel_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("amdrel_test_prom_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("amdrel_test_prom_hist{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("amdrel_test_prom_hist_sum 4"), std::string::npos);
  EXPECT_NE(text.find("amdrel_test_prom_hist_count 2"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value", and no
  // metric name leaks an unmangled dot.
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_EQ(line.substr(0, name_end).find('.'), std::string::npos)
        << line;  // dots only ever appear in values
    EXPECT_EQ(line.compare(0, 7, "amdrel_"), 0) << line;
  }
}

}  // namespace
}  // namespace amdrel

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "flow/flow.hpp"
#include "lint/flow_rules.hpp"
#include "lint/lint.hpp"
#include "lint/netlist_rules.hpp"
#include "lint/rr_rules.hpp"
#include "netlist/blif.hpp"
#include "util/strings.hpp"

namespace amdrel {
namespace {

using lint::Report;
using lint::Severity;
using netlist::Network;
using netlist::SignalId;
using netlist::TruthTable;

std::string fixture(const std::string& name) {
  return std::string(AMDREL_FIXTURE_DIR) + "/" + name;
}

// ---------- engine ----------

TEST(LintEngine, RegistryCoversAllFamilies) {
  int netlist = 0, rr = 0, flow = 0, equiv = 0;
  for (const auto& r : lint::rule_registry()) {
    if (std::string(r.family) == "netlist") ++netlist;
    else if (std::string(r.family) == "rr-graph") ++rr;
    else if (std::string(r.family) == "flow") ++flow;
    else if (std::string(r.family) == "equiv") ++equiv;
    else FAIL() << "unknown family " << r.family;
  }
  EXPECT_EQ(netlist, 8);
  EXPECT_EQ(rr, 5);
  EXPECT_EQ(flow, 11);
  EXPECT_EQ(equiv, 5);
  EXPECT_NE(lint::find_rule(lint::rules::kCombCycle), nullptr);
  EXPECT_EQ(lint::find_rule("XX999"), nullptr);
}

TEST(LintEngine, AddUsesRegistryDefaultSeverityAndStage) {
  Report report;
  report.set_stage("unit");
  report.add(lint::rules::kCombCycle, "network 'x'", "boom");
  report.add(lint::rules::kUnusedInput, "signal 'a'", "idle");
  ASSERT_EQ(report.diagnostics().size(), 2u);
  EXPECT_EQ(report.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(report.diagnostics()[0].stage, "unit");
  EXPECT_EQ(report.diagnostics()[1].severity, Severity::kInfo);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.fired(lint::rules::kCombCycle));
  EXPECT_FALSE(report.fired(lint::rules::kMultiDriven));
}

TEST(LintEngine, PerRuleCapKeepsExactCounts) {
  Report report;
  for (int i = 0; i < 250; ++i) {
    report.add(lint::rules::kDanglingOutput, strprintf("signal %d", i), "x");
  }
  EXPECT_EQ(report.count_rule(lint::rules::kDanglingOutput), 250);
  EXPECT_EQ(static_cast<int>(report.diagnostics().size()),
            Report::kMaxPerRule);
  EXPECT_EQ(report.count(Severity::kWarning), Report::kMaxPerRule);
}

TEST(LintEngine, TextAndJsonEmitters) {
  Report report;
  report.set_stage("netlist");
  report.add(lint::rules::kMultiDriven, "signal \"y\"", "driven by 2 sources");
  const std::string text = report.to_text();
  EXPECT_NE(text.find("error [NL002]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule\":\"NL002\""), std::string::npos);
  EXPECT_NE(json.find("\\\"y\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\":1"), std::string::npos);
}

TEST(LintEngine, MergeAccumulates) {
  Report a, b;
  a.add(lint::rules::kUnusedInput, "signal 'p'", "idle");
  b.add(lint::rules::kUnusedInput, "signal 'q'", "idle");
  b.add(lint::rules::kMultiDriven, "signal 'r'", "2 drivers");
  a.merge(b);
  EXPECT_EQ(a.count_rule(lint::rules::kUnusedInput), 2);
  EXPECT_EQ(a.count_rule(lint::rules::kMultiDriven), 1);
}

// ---------- netlist rules: seeded-defect fixtures ----------

Report lint_fixture(const std::string& name) {
  Network net = netlist::read_blif_file(fixture(name));
  Report report;
  report.set_stage("netlist");
  lint::lint_network(net, &report);
  return report;
}

TEST(NetlistLint, CombinationalLoopFixtureFiresNL001) {
  Report report = lint_fixture("defect_comb_loop.blif");
  EXPECT_TRUE(report.fired(lint::rules::kCombCycle));
  EXPECT_TRUE(report.has_errors());
}

TEST(NetlistLint, DoubleDrivenFixtureFiresNL002) {
  Report report = lint_fixture("defect_double_driven.blif");
  EXPECT_TRUE(report.fired(lint::rules::kMultiDriven));
  EXPECT_TRUE(report.has_errors());
}

TEST(NetlistLint, FloatingInputFixtureFiresNL003) {
  Report report = lint_fixture("defect_floating_input.blif");
  EXPECT_TRUE(report.fired(lint::rules::kUndrivenSignal));
  EXPECT_TRUE(report.has_errors());
}

TEST(NetlistLint, CleanFixtureHasZeroDiagnostics) {
  Report report = lint_fixture("clean_small.blif");
  EXPECT_TRUE(report.empty()) << report.to_text();
}

// ---------- netlist rules: in-code defects ----------

TEST(NetlistLint, DanglingOutputFiresNL004) {
  Network net("dangling");
  SignalId a = net.add_signal("a");
  SignalId y = net.add_signal("y");
  SignalId dead = net.add_signal("dead");
  net.add_input(a);
  net.add_gate("g_y", TruthTable::identity(), {a}, y);
  net.add_gate("g_dead", TruthTable::inverter(), {a}, dead);
  net.add_output(y);
  Report report;
  lint::lint_network(net, &report);
  EXPECT_TRUE(report.fired(lint::rules::kDanglingOutput));
  EXPECT_FALSE(report.has_errors());  // dangling is a warning
}

TEST(NetlistLint, ConstantLutFiresNL005) {
  Network net("constant");
  SignalId a = net.add_signal("a");
  SignalId y = net.add_signal("y");
  net.add_input(a);
  net.add_gate("g_const", TruthTable::constant(true).extend(1), {a}, y);
  net.add_output(y);
  Report report;
  lint::lint_network(net, &report);
  EXPECT_TRUE(report.fired(lint::rules::kConstantLut));
}

TEST(NetlistLint, DuplicateLutFiresNL006) {
  Network net("duplicate");
  SignalId a = net.add_signal("a");
  SignalId b = net.add_signal("b");
  SignalId y1 = net.add_signal("y1");
  SignalId y2 = net.add_signal("y2");
  net.add_input(a);
  net.add_input(b);
  net.add_gate("g1", TruthTable::and_n(2), {a, b}, y1);
  net.add_gate("g2", TruthTable::and_n(2), {a, b}, y2);
  net.add_output(y1);
  net.add_output(y2);
  Report report;
  lint::lint_network(net, &report);
  EXPECT_EQ(report.count_rule(lint::rules::kDuplicateLut), 1);
}

TEST(NetlistLint, GatedClockAndMultiClockFireNL007) {
  Network net("clocks");
  SignalId clk = net.add_signal("clk");
  SignalId clk2 = net.add_signal("clk2");
  SignalId en = net.add_signal("en");
  SignalId gated = net.add_signal("gated");
  SignalId d = net.add_signal("d");
  SignalId q1 = net.add_signal("q1");
  SignalId q2 = net.add_signal("q2");
  SignalId y = net.add_signal("y");
  net.add_input(clk);
  net.add_input(clk2);
  net.add_input(en);
  net.add_input(d);
  net.add_gate("g_gate", TruthTable::and_n(2), {clk, en}, gated);
  net.add_gate("g_data", TruthTable::and_n(2), {clk2, d}, y);
  net.add_latch("l1", d, q1, gated);
  net.add_latch("l2", d, q2, clk2);
  net.add_output(q1);
  net.add_output(q2);
  net.add_output(y);
  Report report;
  lint::lint_network(net, &report);
  // gated clock (`gated`) + clock-as-data (clk2 feeds g_data) + two
  // clock domains
  EXPECT_GE(report.count_rule(lint::rules::kClockSanity), 3);
}

TEST(NetlistLint, UnusedPrimaryInputFiresNL008) {
  Network net("unused");
  SignalId a = net.add_signal("a");
  SignalId idle = net.add_signal("idle");
  SignalId y = net.add_signal("y");
  net.add_input(a);
  net.add_input(idle);
  net.add_gate("g", TruthTable::identity(), {a}, y);
  net.add_output(y);
  Report report;
  lint::lint_network(net, &report);
  EXPECT_EQ(report.count_rule(lint::rules::kUnusedInput), 1);
  EXPECT_EQ(report.count(Severity::kInfo), 1);
}

// ---------- RR-graph rules ----------

route::RrNode wire_node(int x, int y, int track) {
  route::RrNode n;
  n.type = route::RrType::kChanX;
  n.x = x;
  n.y = y;
  n.track = track;
  return n;
}

TEST(RrLint, SymmetricPairIsClean) {
  std::vector<route::RrNode> nodes = {wire_node(1, 0, 0), wire_node(2, 0, 0)};
  nodes[0].out_edges = {1};
  nodes[1].out_edges = {0};
  Report report;
  lint::lint_rr_nodes(nodes, 1, &report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(RrLint, AsymmetricSwitchFiresRR003) {
  std::vector<route::RrNode> nodes = {wire_node(1, 0, 0), wire_node(2, 0, 0)};
  nodes[0].out_edges = {1};  // no return edge
  Report report;
  lint::lint_rr_nodes(nodes, 1, &report);
  EXPECT_TRUE(report.fired(lint::rules::kRrAsymmetricSwitch));
  // node 1 also has zero fanout and is only reachable one way
  EXPECT_TRUE(report.fired(lint::rules::kRrZeroFanoutWire));
}

TEST(RrLint, ChannelWidthMismatchFiresRR002) {
  // Declared W=2 but only one track present at (1,0); plus a track index
  // outside [0, W).
  std::vector<route::RrNode> nodes = {wire_node(1, 0, 0), wire_node(2, 0, 0),
                                      wire_node(2, 0, 5)};
  nodes[0].out_edges = {1};
  nodes[1].out_edges = {0};
  nodes[2].out_edges = {0};
  nodes[0].out_edges.push_back(2);
  Report report;
  lint::lint_rr_nodes(nodes, 2, &report);
  EXPECT_TRUE(report.fired(lint::rules::kRrChannelWidth));
  EXPECT_TRUE(report.has_errors());
}

TEST(RrLint, UnreachableNodeFiresRR001) {
  std::vector<route::RrNode> nodes = {wire_node(1, 0, 0), wire_node(2, 0, 0)};
  nodes[0].out_edges = {1};
  nodes[1].out_edges = {0};
  route::RrNode sink;
  sink.type = route::RrType::kSink;
  nodes.push_back(sink);  // nothing reaches it
  Report report;
  lint::lint_rr_nodes(nodes, 1, &report);
  EXPECT_TRUE(report.fired(lint::rules::kRrUnreachable));
}

TEST(RrLint, InvalidEdgesFireRR005) {
  std::vector<route::RrNode> nodes = {wire_node(1, 0, 0), wire_node(2, 0, 0)};
  nodes[0].out_edges = {1, 1, 0, 99};  // duplicate, self-loop, dangling
  nodes[1].out_edges = {0};
  Report report;
  lint::lint_rr_nodes(nodes, 1, &report);
  EXPECT_GE(report.count_rule(lint::rules::kRrInvalidEdge), 3);
}

TEST(RrLint, GeneratedGraphIsClean) {
  Network net = netlist::read_blif_file(fixture("clean_small.blif"));
  flow::FlowOptions opt;
  auto result = flow::run_flow_from_network(net, opt);
  Report report;
  lint::lint_rr_graph(*result.rr_graph, &report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

// ---------- flow invariants ----------

flow::FlowResult small_flow() {
  Network net = netlist::read_blif_file(fixture("clean_small.blif"));
  flow::FlowOptions opt;
  return flow::run_flow_from_network(net, opt);
}

TEST(FlowInvariants, CleanFlowPassesAllBarriers) {
  auto result = small_flow();
  EXPECT_TRUE(result.routing.success);
  EXPECT_TRUE(result.lint.empty()) << result.lint.to_text();
}

TEST(FlowInvariants, PackAndPlaceOfCleanFlowReportNothing) {
  auto result = small_flow();
  Report report;
  lint::check_post_pack(*result.packed, &report);
  lint::check_post_place(*result.placement, &report);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(FlowInvariants, OverlappingBlocksFireFL201) {
  auto result = small_flow();
  ASSERT_GE(result.placement->blocks().size(), 2u);
  result.placement->set_location(0, result.placement->location(1));
  Report report;
  lint::check_post_place(*result.placement, &report);
  EXPECT_TRUE(report.fired(lint::rules::kPlaceOverlap));
}

TEST(FlowInvariants, OffGridBlockFiresFL202) {
  auto result = small_flow();
  result.placement->set_location(0, place::Loc{-3, 7, 0});
  Report report;
  lint::check_post_place(*result.placement, &report);
  EXPECT_TRUE(report.fired(lint::rules::kPlaceOffGrid));
}

TEST(FlowInvariants, CorruptedRouteOveruseFiresFL301) {
  auto result = small_flow();
  route::RouteResult corrupted = result.routing;
  // Duplicate a wire node inside one net's tree: its occupancy doubles
  // past capacity 1.
  bool seeded = false;
  for (auto& r : corrupted.routes) {
    for (std::size_t k = 0; k < r.nodes.size() && !seeded; ++k) {
      const route::RrType t = result.rr_graph->node_type(r.nodes[k]);
      if (t == route::RrType::kChanX || t == route::RrType::kChanY) {
        r.nodes.push_back(r.nodes[k]);
        r.parent.push_back(r.parent[k]);
        seeded = true;
      }
    }
    if (seeded) break;
  }
  ASSERT_TRUE(seeded) << "no wire node found in any route";
  Report report;
  lint::check_post_route(*result.rr_graph, corrupted, &report);
  EXPECT_TRUE(report.fired(lint::rules::kRouteOveruse));
}

TEST(FlowInvariants, DroppedRouteFiresFL302) {
  auto result = small_flow();
  route::RouteResult corrupted = result.routing;
  bool seeded = false;
  for (std::size_t ni = 0; ni < corrupted.routes.size(); ++ni) {
    if (!result.rr_graph->sinks_of_net(static_cast<int>(ni)).empty()) {
      corrupted.routes[ni].nodes.clear();
      corrupted.routes[ni].parent.clear();
      seeded = true;
      break;
    }
  }
  ASSERT_TRUE(seeded);
  Report report;
  lint::check_post_route(*result.rr_graph, corrupted, &report);
  EXPECT_TRUE(report.fired(lint::rules::kRouteDisconnected));
}

TEST(FlowInvariants, FlippedLutBitsFireFL401) {
  auto result = small_flow();
  bitgen::Bitstream corrupted = result.bitstream;
  bool seeded = false;
  for (auto& clb : corrupted.clbs) {
    for (auto& ble : clb.bles) {
      if (ble.used) {
        ble.lut_bits = ~ble.lut_bits;
        seeded = true;
        break;
      }
    }
    if (seeded) break;
  }
  ASSERT_TRUE(seeded);
  Report report;
  lint::check_post_bitgen(bitgen::serialize(corrupted), *result.mapped,
                          &report);
  EXPECT_TRUE(report.fired(lint::rules::kBitgenRoundtrip));
}

TEST(FlowInvariants, TruncatedBitstreamFiresFL402) {
  auto result = small_flow();
  std::vector<std::uint8_t> bytes = result.bitstream_bytes;
  bytes.resize(bytes.size() / 2);
  Report report;
  lint::check_post_bitgen(bytes, *result.mapped, &report);
  EXPECT_TRUE(report.fired(lint::rules::kBitgenMalformed));
}

// ---------- the clean-flow acceptance test ----------

TEST(FlowInvariants, TrafficLightFlowLintsClean) {
  std::ifstream in(fixture("traffic_light.vhd"));
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  flow::FlowOptions opt;
  opt.check_invariants = true;
  auto result = flow::run_flow_from_vhdl(ss.str(), "traffic", opt);
  EXPECT_TRUE(result.routing.success);
  EXPECT_TRUE(result.lint.empty()) << result.lint.to_text();
}

}  // namespace
}  // namespace amdrel

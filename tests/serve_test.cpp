// amdrel_serve daemon tests: line-protocol round-trips (malformed input
// answers an error reply on a live connection), admission control
// (queue-full rejection), cancel-then-status, shutdown with in-flight
// jobs, and the concurrency soak — ≥64 bench_gen jobs with mixed
// priorities and mid-flight cancels, every completed bitstream
// byte-identical (same FNV-1a fingerprint and hex bytes) to a standalone
// FlowSession run of the same JobSpec. Run under TSan by the tsan CI job.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "serve/serve.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace amdrel {
namespace {

using serve::JobState;
using serve::ServeOptions;
using serve::Server;

/// A blocking line-protocol client for the daemon under test.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request line, returns the parsed reply line.
  util::Json request(const std::string& line) {
    std::string out = line + "\n";
    EXPECT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    std::string reply;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
    return util::parse_json(reply);
  }

 private:
  int fd_ = -1;
};

JobState state_of(const std::shared_ptr<serve::Job>& job) {
  std::lock_guard<std::mutex> lock(job->mu);
  return job->state;
}

/// Polls until job `id` reaches `want` (or any terminal state when
/// `want` is terminal-accepting via exact match); false on timeout.
bool wait_state(Server& server, std::int64_t id, JobState want,
                double timeout_s = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto job = server.find_job(id);
    if (job && state_of(job) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// A quick job (tens of ms) with a parameterized circuit + priority.
std::string quick_job_json(int i) {
  return strprintf(
      "{\"source\":\"bench_gen\",\"label\":\"soak-%d\","
      "\"priority\":\"%s\","
      "\"bench\":{\"gates\":%d,\"latches\":%d,\"inputs\":8,"
      "\"outputs\":6,\"seed\":%d}%s}",
      i, i % 3 == 0 ? "high" : (i % 3 == 1 ? "normal" : "low"),
      40 + (i % 5) * 12, 2 + i % 4, 1000 + i,
      i % 9 == 0 ? ",\"return_bitstream\":true" : "");
}

/// A job slow enough to still be running while the test pokes at the
/// queue behind it (place anneal on a mid-size circuit).
flow::JobSpec slow_job(const std::string& label) {
  flow::JobSpec spec;
  spec.source = flow::JobSpec::Source::kBenchGen;
  spec.label = label;
  spec.bench.n_gates = 700;
  spec.bench.n_latches = 16;
  spec.bench.n_inputs = 12;
  spec.bench.n_outputs = 10;
  spec.bench.seed = 99;
  spec.options.verify_mode = flow::VerifyMode::kOff;
  return spec;
}

TEST(Serve, MalformedRequestsAnswerErrorsOnALiveConnection) {
  Server server;
  server.start();
  Client client(server.port());

  util::Json reply = client.request("{\"cmd\":\"ping\"}");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reply").as_string(), "pong");

  // Garbage must answer an error reply, not kill the connection.
  reply = client.request("this is not json at all");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_request");

  reply = client.request("{\"no_cmd\":1}");
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"frobnicate\"}");
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"status\"}");  // missing id
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"status\",\"id\":424242}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "not_found");

  // A spec without a source is rejected as bad_job.
  reply = client.request("{\"cmd\":\"submit\",\"job\":{}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_job");

  // An unknown JobSpec key fails the parse loudly.
  reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"blif\",\"typo\":1}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_job");

  // The connection survived all of the above.
  reply = client.request("{\"cmd\":\"ping\"}");
  EXPECT_TRUE(reply.at("ok").as_bool());
  server.shutdown(false);
}

TEST(Serve, QueueFullRejectsWithReason) {
  ServeOptions options;
  options.workers = 1;
  options.max_queue = 1;
  Server server(options);
  server.start();

  // Occupy the single worker, then fill the single queue slot.
  const std::int64_t running = server.submit(slow_job("occupant"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  const std::int64_t queued = server.submit(slow_job("waiter"));
  EXPECT_EQ(server.queue_depth(), 1);

  Client client(server.port());
  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"bench_gen\","
      "\"bench\":{\"gates\":50}}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "queue_full");

  // Draining rejects even with queue space.
  server.cancel_job(queued);
  server.drain();
  reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"bench_gen\","
      "\"bench\":{\"gates\":50}}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "draining");

  server.cancel_job(running);
  server.shutdown(false);
}

TEST(Serve, CancelThenStatus) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  Client client(server.port());

  const std::int64_t running = server.submit(slow_job("running"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  const std::int64_t queued = server.submit(slow_job("queued"));

  // Cancelling a queued job is immediate.
  util::Json reply = client.request(
      strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                static_cast<long long>(queued)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  reply = client.request(strprintf("{\"cmd\":\"status\",\"id\":%lld}",
                                   static_cast<long long>(queued)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  EXPECT_EQ(reply.at("label").as_string(), "queued");

  // Cancelling the running job is cooperative; wait for it to land.
  reply = client.request(strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                                   static_cast<long long>(running)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  reply = client.request(
      strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                "\"timeout_s\":120}",
                static_cast<long long>(running)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  EXPECT_EQ(server.jobs_finished(), 2);
  server.shutdown(false);
}

TEST(Serve, ShutdownDrainsInflightJobs) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  server.start();

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(server.submit(
        flow::parse_job_spec_json(quick_job_json(i))));
  }
  server.shutdown(true);  // drain: every queued job still runs

  EXPECT_EQ(server.jobs_finished(), static_cast<std::int64_t>(ids.size()));
  for (const std::int64_t id : ids) {
    const auto job = server.find_job(id);
    ASSERT_TRUE(job);
    EXPECT_EQ(state_of(job), JobState::kDone) << "job " << id;
  }
}

TEST(Serve, ShutdownNoDrainCancelsPendingJobs) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  const std::int64_t running = server.submit(slow_job("inflight"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  std::vector<std::int64_t> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(server.submit(slow_job("q")));

  server.shutdown(false);  // cancel everything pending first

  for (const std::int64_t id : queued) {
    EXPECT_EQ(state_of(server.find_job(id)), JobState::kCancelled);
  }
  // The in-flight job observed the cooperative cancel (or won the race
  // and completed); either way it is terminal and accounted for.
  EXPECT_TRUE(serve::job_state_terminal(state_of(server.find_job(running))));
  EXPECT_EQ(server.jobs_finished(), 4);
}

TEST(Serve, SoakConcurrentJobsMatchStandaloneBitstreams) {
  constexpr int kJobs = 72;  // ≥64 per the design contract
  ServeOptions options;
  options.workers = 4;
  options.max_queue = kJobs;
  Server server(options);
  server.start();
  Client client(server.port());

  // Submit everything through the protocol, mixed priorities.
  std::vector<std::int64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    util::Json reply = client.request(
        "{\"cmd\":\"submit\",\"job\":" + quick_job_json(i) + "}");
    ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
    ids.push_back(reply.at("id").as_int());
  }
  // Mid-flight cancels: some land on queued jobs, some on running ones.
  std::vector<bool> cancelled(kJobs, false);
  for (int i = 0; i < kJobs; ++i) {
    if (i % 7 != 3) continue;
    cancelled[i] = true;
    util::Json reply = client.request(
        strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                  static_cast<long long>(ids[i])));
    EXPECT_TRUE(reply.at("ok").as_bool());
  }

  int done = 0, cancelled_seen = 0;
  for (int i = 0; i < kJobs; ++i) {
    util::Json reply = client.request(
        strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                  "\"timeout_s\":300}",
                  static_cast<long long>(ids[i])));
    ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
    const std::string state = reply.at("state").as_string();
    if (!cancelled[i]) {
      ASSERT_EQ(state, "done") << reply.dump();
    }
    if (state == "cancelled") {
      ++cancelled_seen;
      continue;
    }
    ASSERT_EQ(state, "done") << reply.dump();
    ++done;

    // Byte-identity against a standalone run of the same JobSpec.
    const flow::JobSpec spec = flow::parse_job_spec_json(quick_job_json(i));
    flow::FlowSession standalone(spec);
    ASSERT_EQ(standalone.run_until(spec.until), flow::SessionState::kDone);
    const util::Json expect =
        flow::job_result_to_json(spec, standalone.result());

    const util::Json& got = reply.at("result");
    for (const char* key : {"bitstream_fnv", "bitstream_bytes",
                            "config_bits", "channel_width", "luts"}) {
      ASSERT_NE(got.get(key), nullptr) << key << ": " << got.dump();
      EXPECT_EQ(got.at(key).dump(), expect.at(key).dump())
          << "job " << i << " key " << key;
    }
    if (spec.return_bitstream) {
      EXPECT_EQ(got.at("bitstream_hex").as_string(),
                expect.at("bitstream_hex").as_string())
          << "job " << i;
    }
  }
  EXPECT_EQ(done + cancelled_seen, kJobs);
  EXPECT_GE(done, kJobs - kJobs / 7 - 1);

  // The registry-backed metrics reply accounts for every job.
  util::Json metrics = client.request("{\"cmd\":\"metrics\"}");
  EXPECT_TRUE(metrics.at("ok").as_bool());
  EXPECT_EQ(metrics.at("server").at("jobs_submitted").as_int(), kJobs);
  EXPECT_EQ(metrics.at("server").at("jobs_finished").as_int(), kJobs);
  EXPECT_EQ(static_cast<int>(metrics.at("jobs").as_array().size()), kJobs);

  client.request("{\"cmd\":\"shutdown\"}");
  EXPECT_TRUE(server.shutdown_requested());
  server.shutdown(true);
}

}  // namespace
}  // namespace amdrel

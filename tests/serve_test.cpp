// amdrel_serve daemon tests: line-protocol round-trips (malformed input
// answers an error reply on a live connection), admission control
// (queue-full rejection), cancel-then-status, shutdown with in-flight
// jobs, and the concurrency soak — ≥64 bench_gen jobs with mixed
// priorities and mid-flight cancels, every completed bitstream
// byte-identical (same FNV-1a fingerprint and hex bytes) to a standalone
// FlowSession run of the same JobSpec. Run under TSan by the tsan CI job.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "obs/report.hpp"
#include "serve/serve.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace amdrel {
namespace {

using serve::JobState;
using serve::ServeOptions;
using serve::Server;

/// A blocking line-protocol client for the daemon under test.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request line, returns the parsed reply line.
  util::Json request(const std::string& line) {
    std::string out = line + "\n";
    EXPECT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    std::string reply;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
    return util::parse_json(reply);
  }

 private:
  int fd_ = -1;
};

JobState state_of(const std::shared_ptr<serve::Job>& job) {
  std::lock_guard<std::mutex> lock(job->mu);
  return job->state;
}

/// Polls until job `id` reaches `want` (or any terminal state when
/// `want` is terminal-accepting via exact match); false on timeout.
bool wait_state(Server& server, std::int64_t id, JobState want,
                double timeout_s = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto job = server.find_job(id);
    if (job && state_of(job) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// A quick job (tens of ms) with a parameterized circuit + priority.
std::string quick_job_json(int i) {
  return strprintf(
      "{\"source\":\"bench_gen\",\"label\":\"soak-%d\","
      "\"priority\":\"%s\","
      "\"bench\":{\"gates\":%d,\"latches\":%d,\"inputs\":8,"
      "\"outputs\":6,\"seed\":%d}%s}",
      i, i % 3 == 0 ? "high" : (i % 3 == 1 ? "normal" : "low"),
      40 + (i % 5) * 12, 2 + i % 4, 1000 + i,
      i % 9 == 0 ? ",\"return_bitstream\":true" : "");
}

/// A job slow enough to still be running while the test pokes at the
/// queue behind it (place anneal on a mid-size circuit).
flow::JobSpec slow_job(const std::string& label) {
  flow::JobSpec spec;
  spec.source = flow::JobSpec::Source::kBenchGen;
  spec.label = label;
  spec.bench.n_gates = 700;
  spec.bench.n_latches = 16;
  spec.bench.n_inputs = 12;
  spec.bench.n_outputs = 10;
  spec.bench.seed = 99;
  spec.options.verify_mode = flow::VerifyMode::kOff;
  return spec;
}

TEST(Serve, MalformedRequestsAnswerErrorsOnALiveConnection) {
  Server server;
  server.start();
  Client client(server.port());

  util::Json reply = client.request("{\"cmd\":\"ping\"}");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reply").as_string(), "pong");

  // Garbage must answer an error reply, not kill the connection.
  reply = client.request("this is not json at all");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_request");

  reply = client.request("{\"no_cmd\":1}");
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"frobnicate\"}");
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"status\"}");  // missing id
  EXPECT_FALSE(reply.at("ok").as_bool());

  reply = client.request("{\"cmd\":\"status\",\"id\":424242}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "not_found");

  // A spec without a source is rejected as bad_job.
  reply = client.request("{\"cmd\":\"submit\",\"job\":{}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_job");

  // An unknown JobSpec key fails the parse loudly.
  reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"blif\",\"typo\":1}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "bad_job");

  // The connection survived all of the above.
  reply = client.request("{\"cmd\":\"ping\"}");
  EXPECT_TRUE(reply.at("ok").as_bool());
  server.shutdown(false);
}

TEST(Serve, QueueFullRejectsWithReason) {
  ServeOptions options;
  options.workers = 1;
  options.max_queue = 1;
  Server server(options);
  server.start();

  // Occupy the single worker, then fill the single queue slot.
  const std::int64_t running = server.submit(slow_job("occupant"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  const std::int64_t queued = server.submit(slow_job("waiter"));
  EXPECT_EQ(server.queue_depth(), 1);

  Client client(server.port());
  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"bench_gen\","
      "\"bench\":{\"gates\":50}}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "queue_full");

  // Draining rejects even with queue space.
  server.cancel_job(queued);
  server.drain();
  reply = client.request(
      "{\"cmd\":\"submit\",\"job\":{\"source\":\"bench_gen\","
      "\"bench\":{\"gates\":50}}}");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "draining");

  server.cancel_job(running);
  server.shutdown(false);
}

TEST(Serve, CancelThenStatus) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  Client client(server.port());

  const std::int64_t running = server.submit(slow_job("running"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  const std::int64_t queued = server.submit(slow_job("queued"));

  // Cancelling a queued job is immediate.
  util::Json reply = client.request(
      strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                static_cast<long long>(queued)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  reply = client.request(strprintf("{\"cmd\":\"status\",\"id\":%lld}",
                                   static_cast<long long>(queued)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  EXPECT_EQ(reply.at("label").as_string(), "queued");

  // Cancelling the running job is cooperative; wait for it to land.
  reply = client.request(strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                                   static_cast<long long>(running)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  reply = client.request(
      strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                "\"timeout_s\":120}",
                static_cast<long long>(running)));
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  EXPECT_EQ(server.jobs_finished(), 2);
  server.shutdown(false);
}

TEST(Serve, ShutdownDrainsInflightJobs) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  server.start();

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(server.submit(
        flow::parse_job_spec_json(quick_job_json(i))));
  }
  server.shutdown(true);  // drain: every queued job still runs

  EXPECT_EQ(server.jobs_finished(), static_cast<std::int64_t>(ids.size()));
  for (const std::int64_t id : ids) {
    const auto job = server.find_job(id);
    ASSERT_TRUE(job);
    EXPECT_EQ(state_of(job), JobState::kDone) << "job " << id;
  }
}

TEST(Serve, ShutdownNoDrainCancelsPendingJobs) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  server.start();

  const std::int64_t running = server.submit(slow_job("inflight"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  std::vector<std::int64_t> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(server.submit(slow_job("q")));

  server.shutdown(false);  // cancel everything pending first

  for (const std::int64_t id : queued) {
    EXPECT_EQ(state_of(server.find_job(id)), JobState::kCancelled);
  }
  // The in-flight job observed the cooperative cancel (or won the race
  // and completed); either way it is terminal and accounted for.
  EXPECT_TRUE(serve::job_state_terminal(state_of(server.find_job(running))));
  EXPECT_EQ(server.jobs_finished(), 4);
}

TEST(Serve, StatusAndResultReportQueueWaitAndRunWall) {
  Server server;
  server.start();
  Client client(server.port());

  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":" + quick_job_json(1) + "}");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  const std::int64_t id = reply.at("id").as_int();

  reply = client.request(
      strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                "\"timeout_s\":120}",
                static_cast<long long>(id)));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  ASSERT_EQ(reply.at("state").as_string(), "done");
  EXPECT_GE(reply.at("queue_wait_s").as_number(), 0.0);
  EXPECT_GT(reply.at("run_wall_s").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(reply.at("run_wall_s").as_number(),
                   reply.at("wall_s").as_number());

  reply = client.request(strprintf("{\"cmd\":\"status\",\"id\":%lld}",
                                   static_cast<long long>(id)));
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_GE(reply.at("queue_wait_s").as_number(), 0.0);
  EXPECT_GT(reply.at("run_wall_s").as_number(), 0.0);
  server.shutdown(true);
}

TEST(Serve, QueuedCancelReportsZeroWallAndItsQueueWait) {
  ServeOptions options;
  options.workers = 1;
  Server server(options);
  server.start();
  Client client(server.port());

  const std::int64_t running = server.submit(slow_job("occupant"));
  ASSERT_TRUE(wait_state(server, running, JobState::kRunning));
  const std::int64_t queued = server.submit(slow_job("victim"));
  server.cancel_job(queued);

  // A job cancelled while queued never ran: wall_s is an explicit 0 (not
  // a stale default) and queue_wait_s closes out the wait it did spend.
  util::Json reply = client.request(
      strprintf("{\"cmd\":\"result\",\"id\":%lld}",
                static_cast<long long>(queued)));
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  EXPECT_EQ(reply.at("state").as_string(), "cancelled");
  EXPECT_DOUBLE_EQ(reply.at("wall_s").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(reply.at("run_wall_s").as_number(), 0.0);
  EXPECT_GE(reply.at("queue_wait_s").as_number(), 0.0);

  server.cancel_job(running);
  server.shutdown(false);
}

TEST(Serve, StatsSummarizesTheDaemon) {
  ServeOptions options;
  options.workers = 2;
  Server server(options);
  server.start();
  Client client(server.port());

  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":" + quick_job_json(2) + "}");
  const std::int64_t id = reply.at("id").as_int();
  client.request(strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                           "\"timeout_s\":120}",
                           static_cast<long long>(id)));

  util::Json stats = client.request("{\"cmd\":\"stats\"}");
  ASSERT_TRUE(stats.at("ok").as_bool()) << stats.dump();
  EXPECT_GE(stats.at("uptime_s").as_number(), 0.0);
  EXPECT_EQ(stats.at("workers").as_int(), 2);
  EXPECT_FALSE(stats.at("draining").as_bool());
  EXPECT_EQ(stats.at("queue_depth").at("total").as_int(), 0);
  EXPECT_EQ(stats.at("jobs").at("submitted").as_int(), 1);
  EXPECT_EQ(stats.at("jobs").at("done").as_int(), 1);
  EXPECT_EQ(stats.at("jobs").at("running").as_int(), 0);
  // Latency histograms come from the process-global registry, so other
  // servers in this test binary may have contributed: loose bounds only.
  EXPECT_GE(stats.at("queue_wait_s").at("count").as_int(), 1);
  EXPECT_GE(stats.at("run_wall_s").at("count").as_int(), 1);
  EXPECT_GE(stats.at("events").at("next_seq").as_int(), 3);
  server.shutdown(true);
}

TEST(Serve, EventsStreamRecordsTransitionsAndPages) {
  Server server;
  server.start();
  Client client(server.port());

  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":" + quick_job_json(3) + "}");
  const std::int64_t id = reply.at("id").as_int();
  client.request(strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                           "\"timeout_s\":120}",
                           static_cast<long long>(id)));

  util::Json events = client.request("{\"cmd\":\"events\"}");
  ASSERT_TRUE(events.at("ok").as_bool()) << events.dump();
  std::vector<std::string> kinds;
  for (const util::Json& e : events.at("events").as_array()) {
    if (e.at("id").as_int() == id) kinds.push_back(e.at("kind").as_string());
  }
  ASSERT_EQ(kinds.size(), 3u) << events.dump();
  EXPECT_EQ(kinds[0], "submitted");
  EXPECT_EQ(kinds[1], "started");
  EXPECT_EQ(kinds[2], "done");
  EXPECT_EQ(events.at("dropped").as_int(), 0);

  // Paging: limit=1 returns the oldest unseen event and a cursor that
  // resumes exactly after it.
  util::Json page = client.request("{\"cmd\":\"events\",\"limit\":1}");
  ASSERT_EQ(page.at("events").as_array().size(), 1u);
  const std::int64_t first_seq =
      page.at("events").as_array()[0].at("seq").as_int();
  EXPECT_EQ(page.at("next_after").as_int(), first_seq);
  page = client.request(
      strprintf("{\"cmd\":\"events\",\"after\":%lld,\"limit\":1}",
                static_cast<long long>(first_seq)));
  ASSERT_EQ(page.at("events").as_array().size(), 1u);
  EXPECT_GT(page.at("events").as_array()[0].at("seq").as_int(), first_seq);
  server.shutdown(true);
}

TEST(Serve, EventRingIsBoundedAndCountsDrops) {
  ServeOptions options;
  options.workers = 1;
  options.event_buffer = 4;
  Server server(options);
  server.start();

  // 3 quick jobs × (submitted+started+done) = 9 events through a ring
  // of 4: the oldest are dropped and accounted for.
  for (int i = 0; i < 3; ++i) {
    server.submit(flow::parse_job_spec_json(quick_job_json(i)));
  }
  server.shutdown(true);
  const auto events = server.events_after(0);
  EXPECT_LE(events.size(), 4u);
  ASSERT_FALSE(events.empty());
  EXPECT_GT(events.front().seq, 1);  // seq gap ⇒ overflow happened
}

TEST(Serve, WatchdogFlagsSlowJobs) {
  ServeOptions options;
  options.workers = 1;
  options.slow_job_s = 0.05;
  Server server(options);
  server.start();

  const std::int64_t id = server.submit(slow_job("laggard"));
  ASSERT_TRUE(wait_state(server, id, JobState::kRunning));
  // The watchdog scans every slow_job_s/4; give it a few periods.
  bool flagged = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (!flagged && std::chrono::steady_clock::now() < deadline) {
    for (const auto& e : server.events_after(0)) {
      if (e.kind == "slow_job" && e.job_id == id) flagged = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(flagged);
  // One firing per job, not one per scan.
  server.cancel_job(id);
  server.shutdown(false);
  int firings = 0;
  for (const auto& e : server.events_after(0)) {
    if (e.kind == "slow_job" && e.job_id == id) ++firings;
  }
  EXPECT_EQ(firings, 1);
}

TEST(Serve, MetricsServesPrometheusTextExposition) {
  Server server;
  server.start();
  Client client(server.port());

  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":" + quick_job_json(4) + "}");
  const std::int64_t id = reply.at("id").as_int();
  client.request(strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                           "\"timeout_s\":120}",
                           static_cast<long long>(id)));

  reply = client.request("{\"cmd\":\"metrics\",\"format\":\"prometheus\"}");
  ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
  EXPECT_EQ(reply.at("format").as_string(), "prometheus");
  const std::string text = reply.at("text").as_string();
  EXPECT_NE(text.find("# TYPE amdrel_serve_jobs_submitted counter"),
            std::string::npos)
      << text.substr(0, 2000);
  EXPECT_NE(text.find("# TYPE amdrel_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("amdrel_serve_run_wall_s{quantile=\"0.5\"}"),
            std::string::npos);
  server.shutdown(true);
}

TEST(Serve, TraceCommandRequiresTraceDir) {
  Server server;  // no trace_dir: per-job tracing off
  server.start();
  Client client(server.port());
  util::Json reply = client.request(
      "{\"cmd\":\"submit\",\"job\":" + quick_job_json(5) + "}");
  const std::int64_t id = reply.at("id").as_int();
  client.request(strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                           "\"timeout_s\":120}",
                           static_cast<long long>(id)));
  reply = client.request(strprintf("{\"cmd\":\"trace\",\"id\":%lld}",
                                   static_cast<long long>(id)));
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("reason").as_string(), "no_trace");
  server.shutdown(true);
}

TEST(Serve, SoakConcurrentJobsMatchStandaloneBitstreams) {
  constexpr int kJobs = 72;  // ≥64 per the design contract
  const std::string trace_dir = ::testing::TempDir() + "/serve_soak_traces";
  ::mkdir(trace_dir.c_str(), 0755);
  ServeOptions options;
  options.workers = 4;
  options.max_queue = kJobs;
  options.trace_dir = trace_dir;
  Server server(options);
  server.start();
  Client client(server.port());

  // Submit everything through the protocol, mixed priorities.
  std::vector<std::int64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    util::Json reply = client.request(
        "{\"cmd\":\"submit\",\"job\":" + quick_job_json(i) + "}");
    ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
    ids.push_back(reply.at("id").as_int());
  }
  // Mid-flight cancels: some land on queued jobs, some on running ones.
  std::vector<bool> cancelled(kJobs, false);
  for (int i = 0; i < kJobs; ++i) {
    if (i % 7 != 3) continue;
    cancelled[i] = true;
    util::Json reply = client.request(
        strprintf("{\"cmd\":\"cancel\",\"id\":%lld}",
                  static_cast<long long>(ids[i])));
    EXPECT_TRUE(reply.at("ok").as_bool());
  }

  int done = 0, cancelled_seen = 0;
  for (int i = 0; i < kJobs; ++i) {
    util::Json reply = client.request(
        strprintf("{\"cmd\":\"result\",\"id\":%lld,\"wait\":true,"
                  "\"timeout_s\":300}",
                  static_cast<long long>(ids[i])));
    ASSERT_TRUE(reply.at("ok").as_bool()) << reply.dump();
    const std::string state = reply.at("state").as_string();
    if (!cancelled[i]) {
      ASSERT_EQ(state, "done") << reply.dump();
    }
    if (state == "cancelled") {
      ++cancelled_seen;
      continue;
    }
    ASSERT_EQ(state, "done") << reply.dump();
    ++done;

    // Byte-identity against a standalone run of the same JobSpec.
    const flow::JobSpec spec = flow::parse_job_spec_json(quick_job_json(i));
    flow::FlowSession standalone(spec);
    ASSERT_EQ(standalone.run_until(spec.until), flow::SessionState::kDone);
    const util::Json expect =
        flow::job_result_to_json(spec, standalone.result());

    const util::Json& got = reply.at("result");
    for (const char* key : {"bitstream_fnv", "bitstream_bytes",
                            "config_bits", "channel_width", "luts"}) {
      ASSERT_NE(got.get(key), nullptr) << key << ": " << got.dump();
      EXPECT_EQ(got.at(key).dump(), expect.at(key).dump())
          << "job " << i << " key " << key;
    }
    if (spec.return_bitstream) {
      EXPECT_EQ(got.at("bitstream_hex").as_string(),
                expect.at("bitstream_hex").as_string())
          << "job " << i;
    }
  }
  EXPECT_EQ(done + cancelled_seen, kJobs);
  EXPECT_GE(done, kJobs - kJobs / 7 - 1);

  // Per-job trace purity: with 4 workers interleaving 72 jobs, every
  // spooled trace must contain only its own job's events — each line
  // tagged with that job's trace id, exactly one serve.job root, and the
  // flow stages reconstructed as its children.
  std::vector<std::string> trace_bodies;
  std::vector<std::string> trace_ids;
  int traced = 0;
  for (int i = 0; i < kJobs; ++i) {
    util::Json reply = client.request(
        strprintf("{\"cmd\":\"trace\",\"id\":%lld}",
                  static_cast<long long>(ids[i])));
    if (!reply.at("ok").as_bool()) {
      // Jobs cancelled while still queued never ran, so they have no
      // spool — the only acceptable failure.
      ASSERT_TRUE(cancelled[i]) << reply.dump();
      EXPECT_EQ(reply.at("reason").as_string(), "no_trace");
      continue;
    }
    ++traced;
    EXPECT_TRUE(reply.at("complete").as_bool());
    const std::string want_trace =
        strprintf("job-%lld", static_cast<long long>(ids[i]));
    const std::string& body = reply.at("trace_jsonl").as_string();
    std::istringstream lines(body);
    std::size_t n_lines = 0;
    for (std::string line; std::getline(lines, line); ++n_lines) {
      obs::TraceEvent e;
      ASSERT_TRUE(obs::parse_trace_line(line, &e)) << line;
      ASSERT_EQ(e.trace, want_trace) << "foreign event in job trace: "
                                     << line;
    }
    ASSERT_GT(n_lines, 0u);
    const std::string state =
        client.request(strprintf("{\"cmd\":\"status\",\"id\":%lld}",
                                 static_cast<long long>(ids[i])))
            .at("state")
            .as_string();
    if (state == "done" && trace_bodies.size() < 2) {
      trace_bodies.push_back(body);
      trace_ids.push_back(want_trace);
    }
  }
  EXPECT_GE(traced, done);

  // Concatenate two jobs' spools into one interleaved stream: the
  // id-based analyzer must reconstruct one exact serve.job tree per job,
  // with that job's stage spans as children.
  ASSERT_EQ(trace_bodies.size(), 2u);
  std::istringstream merged(trace_bodies[0] + trace_bodies[1]);
  const obs::TraceReport report = obs::analyze_trace(merged);
  EXPECT_EQ(report.traces, 2u);
  EXPECT_EQ(report.unmatched_ends, 0u);
  ASSERT_EQ(report.roots.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    const obs::SpanNode& root = report.roots[r];
    EXPECT_EQ(root.name, "serve.job");
    // The two roots complete in job-finish order; match by trace id.
    EXPECT_TRUE(root.trace == trace_ids[0] || root.trace == trace_ids[1])
        << root.trace;
    int stage_children = 0;
    for (const obs::SpanNode& child : root.children) {
      EXPECT_EQ(child.trace, root.trace);
      if (child.name.rfind("flow.", 0) == 0) ++stage_children;
    }
    EXPECT_EQ(stage_children, flow::kNumStages) << "root " << root.trace;
  }
  EXPECT_NE(report.roots[0].trace, report.roots[1].trace);

  // The registry-backed metrics reply accounts for every job.
  util::Json metrics = client.request("{\"cmd\":\"metrics\"}");
  EXPECT_TRUE(metrics.at("ok").as_bool());
  EXPECT_EQ(metrics.at("server").at("jobs_submitted").as_int(), kJobs);
  EXPECT_EQ(metrics.at("server").at("jobs_finished").as_int(), kJobs);
  EXPECT_EQ(static_cast<int>(metrics.at("jobs").as_array().size()), kJobs);

  client.request("{\"cmd\":\"shutdown\"}");
  EXPECT_TRUE(server.shutdown_requested());
  server.shutdown(true);
}

}  // namespace
}  // namespace amdrel

// amdrel_cli — the command-line face of the toolset (the paper's GUI
// exposes exactly these six stages; each tool also runs standalone here,
// matching the paper's "modularity" requirement §4.1.iii).
//
//   amdrel_cli flow      <design.vhd|design.blif> <top> [outdir]
//                        [--verify off|random|formal|both]
//   amdrel_cli synth     <design.vhd> <top>         # VHDL → EDIF on stdout
//   amdrel_cli e2fmt     <design.edif>              # EDIF → BLIF on stdout
//   amdrel_cli map       <design.blif> [K]          # BLIF → K-LUT BLIF
//   amdrel_cli pack      <mapped.blif>              # → T-VPack .net text
//   amdrel_cli dutys     [K N W]                    # architecture file
//   amdrel_cli pnr       <mapped.blif>              # place+route report
//   amdrel_cli power     <mapped.blif>              # PowerModel report
//   amdrel_cli dagger    <mapped.blif> <out.bit>    # bitstream file
//   amdrel_cli lint      <design> [top] [--json]    # netlist lint report
//   amdrel_cli lint      <design A> <design B>      # equivalence lint (EQ0xx)
//   amdrel_cli verify    <design A> <design B> [--json] [--seed N]
//                        [--mode random|formal|both] [--time-limit S]
//   amdrel_cli eco       <base> <edited> [--json]   # incremental recompile
//   amdrel_cli bench_gen <name> <gates> [latches] [seed] [--edit N]
//   amdrel_cli trace-report <trace.jsonl>... [--json]  # analyze obs traces
//       (multiple files — e.g. the daemon's per-job spools — are analyzed
//       as one interleaved trace; span ids keep the trees separate)
//   amdrel_cli job       <spec.json|->              # run one flow::JobSpec
//
// Global flags (any command, removed from argv before dispatch by
// flow::parse_job_spec — the same layer amdrel_serve and the benches
// use):
//   --trace FILE    write the obs trace (JSON-lines) to FILE
//   --progress      human-readable trace spans on stderr while running
//   --metrics FILE  write the metrics-registry snapshot (JSON) on exit
//   --threads N --seed N --verify MODE --rr-dedup|--rr-dense
//   --until STAGE --priority low|normal|high
//
// `job` reads a JSON job description (flow/jobspec.hpp; '-' = stdin),
// runs it through FlowSession exactly as the amdrel_serve daemon would,
// and prints the same result JSON the daemon replies with (stage
// metrics, QoR summary, bitstream fingerprint) — the single-shot
// reference for daemon byte-identity checks.
//
// Designs load by extension: .vhd/.vhdl (synthesized), .edif, .bit
// (deserialized + fabric-decoded) and BLIF otherwise — so `verify` can
// prove e.g. a source BLIF against its programmed bitstream directly.
//
// `lint` exits 0 when the design is clean (or has only warnings/notes)
// and 1 when any error-severity diagnostic fires; --json emits the
// machine-readable report. `verify` exits 0 when the designs are proven
// equivalent, 1 on a proven mismatch and 4 when the result is
// inconclusive within the solver budget.
//
// `eco` compiles <base> from scratch, incrementally recompiles <edited>
// against the base artifacts (src/eco), formally proves the recompiled
// bitstream equivalent to <edited>, and reports the reuse statistics and
// speedup. Exit 0 when proven equivalent, 1 otherwise. `bench_gen` emits
// a deterministic synthetic circuit as BLIF on stdout; with --edit N it
// applies N small edits (retunes/rewires/added LUTs) to that circuit
// first — generate the base, then the edited copy, and feed both to eco.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_gen/bench_gen.hpp"
#include "bitgen/bitstream.hpp"
#include "eco/eco.hpp"
#include "flow/jobspec.hpp"
#include "flow/session.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "lint/equiv_rules.hpp"
#include "lint/netlist_rules.hpp"
#include "netlist/blif.hpp"
#include "netlist/edif.hpp"
#include "pack/pack.hpp"
#include "synth/lutmap.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "verify/equiv.hpp"
#include "vhdl/synth.hpp"

namespace {

using namespace amdrel;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::uint8_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open: " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

netlist::Network load_design(const std::string& path, const std::string& top) {
  if (ends_with(path, ".vhd") || ends_with(path, ".vhdl")) {
    return vhdl::synthesize_vhdl(read_file(path), top, path);
  }
  if (ends_with(path, ".edif")) return netlist::read_edif_file(path);
  if (ends_with(path, ".bit")) {
    return bitgen::decode_to_network(bitgen::deserialize(read_binary_file(path)));
  }
  return netlist::read_blif_file(path);
}

/// True when `arg` names a loadable design (pair-mode detection for lint).
bool looks_like_design(const std::string& arg) {
  return ends_with(arg, ".vhd") || ends_with(arg, ".vhdl") ||
         ends_with(arg, ".edif") || ends_with(arg, ".bit") ||
         ends_with(arg, ".blif");
}

int usage() {
  std::fprintf(stderr,
               "usage: amdrel_cli "
               "{flow|synth|e2fmt|map|pack|dutys|pnr|power|dagger|lint|"
               "verify|eco|bench_gen|trace-report|job} "
               "args... [--trace FILE] [--progress] [--metrics FILE]\n"
               "see the header of examples/amdrel_cli.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ScopedSink trace_guard;
  flow::RuntimeMetricsGuard metrics_guard;
  flow::JobSpecCli cli;
  try {
    cli = flow::parse_job_spec(&argc, argv);
    trace_guard = flow::install_runtime_trace(cli.runtime);
    metrics_guard.path = cli.runtime.metrics;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "flow") {
      flow::JobSpec job = cli.spec;  // --verify/--seed/--rr-* already in
      job.options.search_min_channel_width = true;
      if (argc < 4) return usage();
      if (argc > 4) job.options.artifact_dir = argv[4];
      job.source = flow::JobSpec::Source::kFile;
      job.path = argv[2];
      job.top = argv[3];
      flow::FlowSession session(job);
      session.run_until(job.until);
      const flow::FlowResult& result = session.result();
      std::printf("%s", result.report().c_str());
      if (!result.lint.empty()) {
        std::printf("--- lint ---\n%s", result.lint.to_text().c_str());
      }
      return 0;
    }
    if (cmd == "job") {
      if (argc < 3) return usage();
      const std::string text =
          std::strcmp(argv[2], "-") == 0
              ? std::string(std::istreambuf_iterator<char>(std::cin),
                            std::istreambuf_iterator<char>())
              : read_file(argv[2]);
      const flow::JobSpec job = flow::parse_job_spec_json(text);
      flow::FlowSession session(job);
      session.run_until(job.until);
      util::Json result = flow::job_result_to_json(job, session.result());
      result.set("state", "done");
      std::printf("%s\n", result.dump().c_str());
      return 0;
    }
    if (cmd == "synth") {
      if (argc < 4) return usage();
      auto net = vhdl::synthesize_vhdl(read_file(argv[2]), argv[3], argv[2]);
      netlist::write_edif(net, std::cout);
      return 0;
    }
    if (cmd == "e2fmt") {
      if (argc < 3) return usage();
      auto net = netlist::read_edif_file(argv[2]);
      netlist::write_blif(net, std::cout);
      return 0;
    }
    if (cmd == "map") {
      if (argc < 3) return usage();
      auto net = netlist::read_blif_file(argv[2]);
      synth::LutMapOptions options;
      if (argc > 3) options.k = parse_int(argv[3], "map K");
      synth::LutMapStats stats;
      auto mapped = synth::map_to_luts(net, options, &stats);
      std::fprintf(stderr, "# %d LUTs, depth %d\n", stats.luts, stats.depth);
      netlist::write_blif(mapped, std::cout);
      return 0;
    }
    if (cmd == "pack") {
      if (argc < 3) return usage();
      auto net = netlist::read_blif_file(argv[2]);
      arch::ArchSpec spec;
      pack::PackedNetlist packed(net, spec);
      std::printf("%s", pack::write_net_string(packed).c_str());
      std::fprintf(stderr, "# %s\n", packed.stats().c_str());
      return 0;
    }
    if (cmd == "dutys") {
      arch::ArchSpec spec;
      if (argc > 2) spec.k = parse_int(argv[2], "dutys K");
      if (argc > 3) spec.n = parse_int(argv[3], "dutys N");
      if (argc > 4) spec.channel_width = parse_int(argv[4], "dutys W");
      arch::write_arch(spec, std::cout);
      return 0;
    }
    if (cmd == "lint") {
      if (argc < 3) return usage();
      bool json = false;
      std::string top = "top";
      std::string other;  // second design ⇒ equivalence lint
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
        else if (looks_like_design(argv[i])) other = argv[i];
        else top = argv[i];
      }
      auto net = load_design(argv[2], top);
      lint::Report report;
      if (other.empty()) {
        report.set_stage("netlist");
        lint::lint_network(net, &report);
      } else {
        auto net_b = load_design(other, top);
        report.set_stage("equiv");
        lint::EquivCheckOptions options;
        lint::check_equivalence_pair(net, net_b, options, &report);
      }
      std::printf("%s", json ? report.to_json().c_str()
                             : report.to_text().c_str());
      if (json) std::printf("\n");
      return report.has_errors() ? 1 : 0;
    }
    if (cmd == "verify") {
      if (argc < 4) return usage();
      bool json = false;
      lint::EquivCheckOptions options;
      options.run_random = false;
      // --seed is stripped by the shared parser; --mode stays local so
      // `verify --mode` and the flow-level --verify keep distinct roles.
      if (cli.seed_given) options.formal.seed = cli.spec.options.seed;
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
          json = true;
        } else if (std::strcmp(argv[i], "--time-limit") == 0 && i + 1 < argc) {
          options.formal.time_limit_s =
              parse_double(argv[++i], "--time-limit");
        } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
          const flow::VerifyMode mode = flow::parse_verify_mode(argv[++i]);
          options.run_random = mode == flow::VerifyMode::kRandom ||
                               mode == flow::VerifyMode::kBoth;
          options.run_formal = mode == flow::VerifyMode::kFormal ||
                               mode == flow::VerifyMode::kBoth;
          if (mode == flow::VerifyMode::kOff) return usage();
        } else {
          return usage();
        }
      }
      auto net_a = load_design(argv[2], "top");
      auto net_b = load_design(argv[3], "top");
      lint::Report report;
      report.set_stage("equiv");
      const verify::EquivResult result =
          lint::check_equivalence_pair(net_a, net_b, options, &report);
      std::printf("%s", json ? result.to_json().c_str()
                             : result.to_text().c_str());
      if (json) std::printf("\n");
      else if (!report.empty()) std::printf("%s", report.to_text().c_str());
      switch (result.status) {
        case verify::EquivStatus::kEquivalent: return 0;
        case verify::EquivStatus::kNotEquivalent: return 1;
        case verify::EquivStatus::kUnknown: return 4;
      }
      return 4;
    }
    if (cmd == "bench_gen") {
      if (argc < 4) return usage();
      bench_gen::BenchSpec spec;
      spec.name = argv[2];
      spec.n_gates = parse_int(argv[3], "bench_gen gates");
      int edits = 0;
      int pos = 0;  // positional: [latches] [seed]
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--edit") == 0 && i + 1 < argc) {
          edits = parse_int(argv[++i], "--edit");
        } else if (pos == 0) {
          spec.n_latches = parse_int(argv[i], "bench_gen latches");
          ++pos;
        } else if (pos == 1) {
          spec.seed = parse_u64(argv[i], "bench_gen seed");
          ++pos;
        } else {
          return usage();
        }
      }
      auto net = bench_gen::generate(spec);
      if (edits > 0) {
        bench_gen::EditSpec edit;
        edit.flips = (edits + 2) / 3;
        edit.rewires = (edits + 1) / 3;
        edit.added_luts = edits / 3;
        edit.seed = spec.seed + 1;
        net = bench_gen::perturb(net, edit);
      }
      netlist::write_blif(net, std::cout);
      return 0;
    }
    if (cmd == "eco") {
      if (argc < 4) return usage();
      bool json = false;
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json = true;
        else return usage();
      }
      auto base = load_design(argv[2], "top");
      auto edited = load_design(argv[3], "top");

      flow::FlowOptions options;
      options.search_min_channel_width = true;
      options.verify_mode = flow::VerifyMode::kOff;  // proven below instead
      using clock = std::chrono::steady_clock;
      const auto t0 = clock::now();
      flow::FlowSession session(base, options);
      if (session.resume() != flow::SessionState::kDone) {
        throw Error("eco: base compile did not complete");
      }
      const auto t1 = clock::now();
      eco::EcoStats stats;
      if (session.resume_with_edit(edited, &stats) !=
          flow::SessionState::kDone) {
        throw Error("eco: incremental recompile did not complete");
      }
      const auto t2 = clock::now();

      // The safety net: the recompiled bitstream must implement the edit.
      // The packing/placement-derived register map pins FF matching.
      const netlist::Network fabric =
          bitgen::decode_to_network(session.result().bitstream);
      verify::EquivOptions vopt;
      vopt.register_map = flow::fabric_register_map(session.result());
      const verify::EquivResult eq =
          verify::prove_equivalence(edited, fabric, vopt);
      const double base_s = std::chrono::duration<double>(t1 - t0).count();
      const double eco_s = std::chrono::duration<double>(t2 - t1).count();
      const double speedup = eco_s > 0.0 ? base_s / eco_s : 0.0;
      if (json) {
        std::printf(
            "{\"cmd\": \"eco\", \"base\": \"%s\", \"edited\": \"%s\", "
            "\"base_s\": %.6f, \"eco_s\": %.6f, \"speedup\": %.2f, "
            "\"dirty_pct\": %.4f, \"reuse_ratio\": %.4f, "
            "\"incremental_map\": %s, \"luts_reused\": %d, "
            "\"clusters_reused\": %d, \"blocks_matched\": %d, "
            "\"nets_seeded\": %d, \"nets_rerouted\": %d, "
            "\"channel_width\": %d, \"fallbacks\": %d, "
            "\"verified\": %s}\n",
            argv[2], argv[3], base_s, eco_s, speedup,
            stats.entry_diff.dirty_pct(), stats.reuse_ratio(),
            stats.incremental_map ? "true" : "false", stats.luts_reused,
            stats.clusters_reused, stats.blocks_matched, stats.nets_seeded,
            stats.nets_rerouted, stats.channel_width, stats.fallbacks,
            eq.equivalent() ? "true" : "false");
      } else {
        std::printf("base compile   %.3fs (W=%d)\n", base_s,
                    stats.channel_width);
        std::printf("eco recompile  %.3fs (%.1fx speedup)\n", eco_s, speedup);
        std::printf("edit           %.2f%% of cells dirty\n",
                    100.0 * stats.entry_diff.dirty_pct());
        std::printf("reuse          %.1f%% (luts %d/%d, clusters %d/%d, "
                    "blocks %d/%d, nets %d/%d seeded)\n",
                    100.0 * stats.reuse_ratio(), stats.luts_reused,
                    stats.luts_total, stats.clusters_reused,
                    stats.clusters_total, stats.blocks_matched,
                    stats.blocks_total, stats.nets_seeded, stats.nets_total);
        std::printf("equivalence    %s\n", eq.message.c_str());
      }
      return eq.equivalent() ? 0 : 1;
    }
    if (cmd == "trace-report") {
      if (argc < 3) return usage();
      bool json = false;
      std::vector<const char*> files;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
          json = true;
        } else {
          files.push_back(argv[i]);
        }
      }
      if (files.empty()) return usage();
      // Several files (e.g. the daemon's per-job spools) concatenate into
      // one interleaved trace: span ids keep each job's tree exact, and
      // the report counts the distinct trace ids.
      std::stringstream all;
      for (const char* file : files) {
        std::ifstream in(file);
        if (!in) {
          std::fprintf(stderr, "amdrel_cli: cannot open '%s'\n", file);
          return 1;
        }
        all << in.rdbuf();
      }
      obs::TraceReport report = obs::analyze_trace(all);
      std::printf("%s", json ? report.to_json().c_str()
                             : report.to_text().c_str());
      if (json) std::printf("\n");
      return 0;
    }
    if (cmd == "pnr" || cmd == "power" || cmd == "dagger") {
      if (argc < 3) return usage();
      flow::JobSpec job = cli.spec;
      job.source = flow::JobSpec::Source::kFile;
      job.path = argv[2];
      job.options.search_min_channel_width = true;
      if (!cli.verify_given) job.options.verify_mode = flow::VerifyMode::kOff;
      flow::FlowSession session(job);
      // `power` needs nothing past the power/timing stage; the other two
      // report on (or write) the programming file.
      session.run_until(cmd == "power" ? flow::Stage::kPower
                                       : flow::Stage::kBitgen);
      const flow::FlowResult& result = session.result();
      if (cmd == "pnr") {
        std::printf("%s", result.report().c_str());
      } else if (cmd == "power") {
        std::printf("%s\n", result.power.summary().c_str());
      } else {
        if (argc < 4) return usage();
        std::ofstream out(argv[3], std::ios::binary);
        out.write(
            reinterpret_cast<const char*>(result.bitstream_bytes.data()),
            static_cast<std::streamsize>(result.bitstream_bytes.size()));
        std::printf("wrote %zu bytes (%lld config bits) to %s\n",
                    result.bitstream_bytes.size(),
                    result.bitstream.config_bits(), argv[3]);
      }
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

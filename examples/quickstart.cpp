// Quickstart: the complete AMDREL flow on a small VHDL design.
//
//   $ ./examples/quickstart [artifact_dir]
//
// Synthesizes a 4-bit counter from VHDL, maps it to the paper's K=4/N=5
// CLB architecture, places, routes, estimates power/timing, generates the
// configuration bitstream, and verifies the programmed fabric is
// bit-exactly equivalent to the input design.

#include <cstdio>
#include <string>

#include "flow/flow.hpp"

namespace {

const char* kCounterVhdl = R"(
library ieee;
use ieee.std_logic_1164.all;

entity counter is
  port ( clk : in std_logic;
         rst : in std_logic;
         en  : in std_logic;
         q   : out std_logic_vector(3 downto 0) );
end counter;

architecture rtl of counter is
  signal count : std_logic_vector(3 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      count <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        count <= count + 1;
      end if;
    end if;
  end process;
  q <= count;
end rtl;
)";

}  // namespace

int main(int argc, char** argv) {
  amdrel::flow::FlowOptions options;
  options.verify_mode = amdrel::flow::VerifyMode::kBoth;  // random + formal proof
  options.search_min_channel_width = true;
  if (argc > 1) options.artifact_dir = argv[1];

  std::printf("AMDREL quickstart: VHDL counter -> bitstream\n\n");
  try {
    auto result =
        amdrel::flow::run_flow_from_vhdl(kCounterVhdl, "counter", options);
    std::printf("%s\n", result.report().c_str());
    std::printf("all stage equivalence checks passed "
                "(synthesis = EDIF = BLIF = bitstream fabric)\n");
    if (argc > 1) {
      std::printf("artifacts written to %s (.edif .blif .net .arch .bit)\n",
                  argv[1]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flow failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

// amdrel_serve — the long-lived compile daemon (DESIGN.md §13).
//
// Usage: amdrel_serve [--port N] [--workers N] [--queue N]
//                     [--trace-dir DIR] [--events N] [--slow-job S]
//                     [--trace FILE] [--metrics FILE] [--progress]
//                     [--threads N]
//
// Listens on 127.0.0.1:<port> (0 = pick an ephemeral port) and serves
// newline-delimited JSON requests; prints "listening on <port>" once
// bound. --threads is the shared runtime spelling for the worker count
// (--workers wins when both are given). Stop it with SIGTERM/SIGINT or
// the `shutdown` command — both drain in-flight jobs before exit.
//
// Observability (DESIGN.md §13.3): --trace-dir spools each job's own
// JSONL trace to DIR/job-<id>.jsonl (fetch with the `trace` command;
// distinct from --trace, the process-global trace of the daemon itself).
// --events sizes the bounded daemon-event ring behind the `events`
// command; --slow-job sets the watchdog threshold in seconds (0 = off).
//
// Quick session (see README):
//   $ amdrel_serve --port 7440 &
//   $ printf '%s\n' '{"cmd":"submit","job":{"source":"bench_gen",
//       "bench":{"kind":"counter","bits":8}}}' | nc 127.0.0.1 7440

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "flow/jobspec.hpp"
#include "serve/serve.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--queue N]\n"
               "          [--trace-dir DIR] [--events N] [--slow-job S]\n"
               "          [--trace FILE] [--metrics FILE] [--progress]"
               " [--threads N]\n",
               argv0);
  return 2;
}

const char* parse_value_arg(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "amdrel_serve: %s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++*i];
}

int parse_int_arg(int argc, char** argv, int* i, const char* flag) {
  return std::atoi(parse_value_arg(argc, argv, i, flag));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amdrel;
  try {
    const flow::JobSpecCli cli = flow::parse_job_spec(&argc, argv);
    const obs::ScopedSink trace_guard = flow::install_runtime_trace(cli.runtime);
    flow::RuntimeMetricsGuard metrics_guard(cli.runtime);

    serve::ServeOptions options;
    options.workers = cli.runtime.threads;  // --threads, overridable below
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--port") == 0) {
        options.port = parse_int_arg(argc, argv, &i, arg);
      } else if (std::strcmp(arg, "--workers") == 0) {
        options.workers = parse_int_arg(argc, argv, &i, arg);
      } else if (std::strcmp(arg, "--queue") == 0) {
        options.max_queue = parse_int_arg(argc, argv, &i, arg);
      } else if (std::strcmp(arg, "--trace-dir") == 0) {
        options.trace_dir = parse_value_arg(argc, argv, &i, arg);
      } else if (std::strcmp(arg, "--events") == 0) {
        options.event_buffer = parse_int_arg(argc, argv, &i, arg);
      } else if (std::strcmp(arg, "--slow-job") == 0) {
        options.slow_job_s = std::atof(parse_value_arg(argc, argv, &i, arg));
      } else if (std::strcmp(arg, "--help") == 0) {
        return usage(argv[0]) == 2 ? 0 : 0;
      } else {
        std::fprintf(stderr, "amdrel_serve: unknown argument '%s'\n", arg);
        return usage(argv[0]);
      }
    }
    return serve::run_server(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amdrel_serve: %s\n", e.what());
    return 1;
  }
}

// Runs the MCNC-like synthetic benchmark suite through the complete CAD
// flow (the paper's Fig. 11 pipeline) and prints a per-circuit QoR table:
// LUTs, depth, clusters, grid, minimum channel width, critical path and
// power. This is the workload a user of the toolset would run to evaluate
// an architecture.

#include <cstdio>
#include <exception>

#include "bench_gen/bench_gen.hpp"
#include "flow/flow.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  std::printf("MCNC-like suite through the AMDREL flow "
              "(K=4, N=5, I=12, min-W search)\n\n");

  Table table({"circuit", "LUTs", "FFs", "depth", "CLBs", "grid", "minW",
               "crit ns", "fmax MHz", "power mW"});

  for (const auto& spec : bench_gen::mcnc_like_suite()) {
    try {
      auto net = bench_gen::generate(spec);
      flow::FlowOptions options;
      options.verify_mode = flow::VerifyMode::kOff;  // speed; covered by tests
      options.search_min_channel_width = true;
      auto r = flow::run_flow_from_network(net, options);
      table.add_row(
          {spec.name, std::to_string(r.map_stats.luts),
           std::to_string(static_cast<int>(r.mapped->latches().size())),
           std::to_string(r.map_stats.depth),
           std::to_string(static_cast<int>(r.packed->clusters().size())),
           std::to_string(r.placement->nx()) + "x" +
               std::to_string(r.placement->ny()),
           std::to_string(r.channel_width),
           strprintf("%.2f", r.timing.critical_path_s * 1e9),
           strprintf("%.1f", r.timing.fmax_hz / 1e6),
           strprintf("%.2f", r.power.total_w * 1e3)});
      std::printf("  %-12s done\n", spec.name.c_str());
    } catch (const std::exception& e) {
      std::printf("  %-12s FAILED: %s\n", spec.name.c_str(), e.what());
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}

// Architecture exploration: sweeps the CLB parameters (K, N) around the
// paper's chosen point (K=4, N=5) and reports how packing density,
// minimum channel width, critical path and power respond — the same style
// of exploration §3.1 of the paper used to select the CLB.

#include <cstdio>
#include <exception>

#include "bench_gen/bench_gen.hpp"
#include "flow/flow.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace amdrel;
  std::printf("CLB architecture exploration (paper's pick: K=4, N=5)\n\n");

  bench_gen::BenchSpec spec;
  spec.name = "explore";
  spec.n_inputs = 14;
  spec.n_outputs = 10;
  spec.n_gates = 600;
  spec.n_latches = 48;
  spec.seed = 4;
  auto net = bench_gen::generate(spec);

  Table table({"K", "N", "I=(K/2)(N+1)", "LUTs", "CLBs", "minW", "crit ns",
               "power mW"});
  for (int k : {3, 4, 5}) {
    for (int n : {3, 5, 8}) {
      try {
        flow::FlowOptions options;
        options.arch.k = k;
        options.arch.n = n;
        options.verify_mode = flow::VerifyMode::kOff;
        options.search_min_channel_width = true;
        auto r = flow::run_flow_from_network(net, options);
        table.add_row({std::to_string(k), std::to_string(n),
                       std::to_string(options.arch.cluster_inputs()),
                       std::to_string(r.map_stats.luts),
                       std::to_string(
                           static_cast<int>(r.packed->clusters().size())),
                       std::to_string(r.channel_width),
                       strprintf("%.2f", r.timing.critical_path_s * 1e9),
                       strprintf("%.2f", r.power.total_w * 1e3)});
        std::printf("  K=%d N=%d done\n", k, n);
      } catch (const std::exception& e) {
        std::printf("  K=%d N=%d FAILED: %s\n", k, n, e.what());
      }
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nNote: the K=4 LUT count differs across K because mapping "
              "re-covers the same logic; the paper selects K=4/N=5 for the "
              "energy-area balance.\n");
  return 0;
}

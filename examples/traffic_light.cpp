// Domain example: a traffic-light controller FSM written in behavioural
// VHDL, implemented on the AMDREL fabric, then *executed from its
// bitstream*: the decoded fabric netlist is simulated cycle by cycle and
// the light sequence printed — demonstrating that the programmed FPGA
// behaves like the source design.

#include <cstdio>

#include "bitgen/bitstream.hpp"
#include "flow/flow.hpp"
#include "netlist/simulate.hpp"

namespace {

const char* kTrafficVhdl = R"(
entity traffic is
  port ( clk     : in std_logic;
         rst     : in std_logic;
         request : in std_logic;                      -- pedestrian button
         lights  : out std_logic_vector(2 downto 0)   -- R, Y, G
       );
end traffic;

architecture rtl of traffic is
  signal state : std_logic_vector(1 downto 0);  -- 00 G, 01 Y, 10 R, 11 RY
  signal timer : std_logic_vector(2 downto 0);
begin
  process(clk, rst)
  begin
    if rst = '1' then
      state <= "00";
      timer <= "000";
    elsif rising_edge(clk) then
      if timer = 0 then
        case state is
          when "00" =>
            if request = '1' then
              state <= "01";
              timer <= "001";
            end if;
          when "01" =>
            state <= "10";
            timer <= "011";
          when "10" =>
            state <= "11";
            timer <= "001";
          when others =>
            state <= "00";
            timer <= "000";
        end case;
      else
        timer <= timer - 1;
      end if;
    end if;
  end process;

  with state select
    lights <= "001" when "00",   -- green
              "010" when "01",   -- yellow
              "100" when "10",   -- red
              "110" when others; -- red+yellow
end rtl;
)";

const char* light_name(int bits) {
  switch (bits) {
    case 0b001: return "GREEN";
    case 0b010: return "YELLOW";
    case 0b100: return "RED";
    case 0b110: return "RED+YELLOW";
    default: return "?";
  }
}

}  // namespace

int main() {
  using namespace amdrel;
  std::printf("traffic-light FSM on the AMDREL FPGA\n\n");

  flow::FlowOptions options;
  options.verify_mode = flow::VerifyMode::kBoth;  // random vectors + formal proof
  auto result = flow::run_flow_from_vhdl(kTrafficVhdl, "traffic", options);
  std::printf("%s\n", result.report().c_str());

  // Execute the *bitstream*: decode the configuration back into a fabric
  // netlist and clock it.
  netlist::Network fabric = bitgen::decode_to_network(result.bitstream);
  netlist::Simulator sim(fabric);
  auto set = [&](const char* name, bool v) { sim.set_input_by_name(name, v); };
  auto lights = [&]() {
    int v = 0;
    for (int i = 0; i < 3; ++i) {
      if (sim.value(fabric.find_signal("lights_" + std::to_string(i)))) {
        v |= 1 << i;
      }
    }
    return v;
  };

  set("rst", true);
  set("request", false);
  sim.propagate();
  sim.step_clock();
  set("rst", false);

  std::printf("cycle  button  lights (executed from the bitstream)\n");
  for (int cycle = 0; cycle < 16; ++cycle) {
    bool button = cycle == 2;
    set("request", button);
    sim.propagate();
    std::printf("%5d  %6s  %s\n", cycle, button ? "press" : "-",
                light_name(lights()));
    sim.step_clock();
  }
  return 0;
}
